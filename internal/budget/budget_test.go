package budget

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestFoldMatchesFlatAgreementFold is the conservation property test: for a
// corpus of random budget trees, folding the hierarchy directly (Fold) and
// compiling it to chained agreements then running the flat Figure-5 fold
// must produce the same entitlement for every node, and the summed
// mandatory capacity must equal the summed root capacities exactly —
// hierarchy neither creates nor destroys guaranteed credit.
func TestFoldMatchesFlatAgreementFold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		spec := randomSpec(rng, trial)
		direct, err := Fold(spec)
		if err != nil {
			t.Fatalf("trial %d: direct fold: %v", trial, err)
		}
		sys, err := Compile(spec)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		access, err := sys.SystemAccess()
		if err != nil {
			t.Fatalf("trial %d: flat fold: %v", trial, err)
		}
		totalCap := 0.0
		for i := range spec.Roots {
			totalCap += spec.Roots[i].Capacity
		}
		flatMC := 0.0
		for name, want := range direct {
			p, ok := sys.Lookup(name)
			if !ok {
				t.Fatalf("trial %d: compiled system lost node %q", trial, name)
			}
			if !close(access.MC[p], want.MC) {
				t.Fatalf("trial %d: node %q MC: flat %v, tree %v", trial, name, access.MC[p], want.MC)
			}
			if !close(access.OC[p], want.OC) {
				t.Fatalf("trial %d: node %q OC: flat %v, tree %v", trial, name, access.OC[p], want.OC)
			}
			flatMC += access.MC[p]
		}
		if !close(flatMC, totalCap) {
			t.Fatalf("trial %d: mandatory total %v != root capacity %v (credit created or destroyed)",
				trial, flatMC, totalCap)
		}
		if !close(direct.Total(), totalCap) {
			t.Fatalf("trial %d: tree mandatory total %v != root capacity %v", trial, direct.Total(), totalCap)
		}
	}
}

// close compares with a tolerance scaled for products of random fractions.
func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// randomSpec builds a valid random forest: 1–2 roots, depth ≤ 3, child
// floors drawn so they sum below 1, ceils in [floor, 1].
func randomSpec(rng *rand.Rand, trial int) Spec {
	var spec Spec
	id := 0
	roots := 1 + rng.Intn(2)
	for r := 0; r < roots; r++ {
		root := Node{
			Name:     fmt.Sprintf("t%d-org%d", trial, r),
			Capacity: 10 + rng.Float64()*990,
		}
		addChildren(rng, &root, trial, &id, 3)
		spec.Roots = append(spec.Roots, root)
	}
	return spec
}

// addChildren attaches 0–3 random children and recurses to the depth limit.
func addChildren(rng *rand.Rand, n *Node, trial int, id *int, depth int) {
	if depth == 0 {
		return
	}
	kids := rng.Intn(4)
	remaining := 1.0
	for c := 0; c < kids; c++ {
		floor := rng.Float64() * remaining * 0.8
		remaining -= floor
		ceil := floor + rng.Float64()*(1-floor)
		child := Node{
			Name:  fmt.Sprintf("t%d-n%d", trial, *id),
			Floor: floor,
			Ceil:  ceil,
		}
		*id++
		addChildren(rng, &child, trial, id, depth-1)
		n.Children = append(n.Children, child)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"empty", Spec{}},
		{"unnamed", Spec{Roots: []Node{{Capacity: 10}}}},
		{"duplicate", Spec{Roots: []Node{{Name: "a", Capacity: 10,
			Children: []Node{{Name: "a", Floor: 0.1}}}}}},
		{"overcommitted", Spec{Roots: []Node{{Name: "a", Capacity: 10,
			Children: []Node{{Name: "b", Floor: 0.7}, {Name: "c", Floor: 0.5}}}}}},
		{"ceil below floor", Spec{Roots: []Node{{Name: "a", Capacity: 10,
			Children: []Node{{Name: "b", Floor: 0.7, Ceil: 0.5}}}}}},
		{"interior capacity", Spec{Roots: []Node{{Name: "a", Capacity: 10,
			Children: []Node{{Name: "b", Floor: 0.5, Capacity: 5}}}}}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", c.name)
		}
	}
}

func TestLeaseLifecycle(t *testing.T) {
	l := NewLedger()
	ls, err := l.Grant("org", "svc", 30, 0)
	if err != nil {
		t.Fatalf("grant: %v", err)
	}
	if ls.ID != 1 || ls.State != LeaseActive {
		t.Fatalf("unexpected lease %+v", ls)
	}
	if got := l.ReservedBy("org"); got != 30 {
		t.Fatalf("ReservedBy = %v, want 30", got)
	}
	if got := l.CreditFor("svc"); got != 30 {
		t.Fatalf("CreditFor = %v, want 30", got)
	}
	if _, err := l.Shrink(ls.ID, 40); err == nil {
		t.Fatal("Shrink above current rate accepted")
	}
	if _, err := l.Shrink(ls.ID, 10); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if got := l.ReservedBy("org"); got != 10 {
		t.Fatalf("ReservedBy after shrink = %v, want 10", got)
	}
	if _, err := l.Revoke(ls.ID); err != nil {
		t.Fatalf("revoke: %v", err)
	}
	if got := l.ReservedBy("org"); got != 0 {
		t.Fatalf("ReservedBy after revoke = %v, want 0", got)
	}
	if _, err := l.Revoke(ls.ID); err == nil {
		t.Fatal("double revoke accepted")
	}
}

func TestLeaseTickExpiry(t *testing.T) {
	l := NewLedger()
	short, _ := l.Grant("org", "a", 5, 2)
	forever, _ := l.Grant("org", "b", 7, 0)
	if exp := l.Tick(); len(exp) != 0 {
		t.Fatalf("expired after 1 tick: %v", exp)
	}
	exp := l.Tick()
	if len(exp) != 1 || exp[0].ID != short.ID || exp[0].State != LeaseExpired {
		t.Fatalf("expired after 2 ticks: %+v", exp)
	}
	if got := l.ReservedBy("org"); got != 7 {
		t.Fatalf("ReservedBy = %v, want 7 (only the until-revoked lease)", got)
	}
	if got, _ := l.Get(forever.ID); got.Windows != 0 || got.State != LeaseActive {
		t.Fatalf("until-revoked lease mutated: %+v", got)
	}
}

func TestTableRoundTrip(t *testing.T) {
	l := NewLedger()
	_, _ = l.Grant("org", "a", 5, 3)
	b, _ := l.Grant("org", "b", 7, 0)
	_, _ = l.Revoke(b.ID)
	table := l.Snapshot(9)
	data, err := EncodeTable(table)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeTable(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	restored := NewLedger()
	restored.Restore(back)
	if got := restored.List(); len(got) != 2 || got[0].Holder != "a" || got[1].State != LeaseRevoked {
		t.Fatalf("restored ledger: %+v", got)
	}
	// Grants after restore continue the id sequence, never reuse one.
	next, _ := restored.Grant("org", "c", 1, 0)
	if next.ID != 3 {
		t.Fatalf("post-restore id = %d, want 3", next.ID)
	}
}
