// Package budget implements hierarchical principals: organizations, teams,
// and services arranged in a tree whose entitlements fold down from each
// root's physical capacity, plus the lease ledger for long-lived work that
// draws a node's budget down across scheduling windows.
//
// The paper's agreement graph is flat, but its §6 future work calls out
// nested tenants and long-lived requests. This package closes the gap
// without touching the enforcement math: a budget tree COMPILES into plain
// chained agreements (parent→child [floor, ceil]) on an agreement.System,
// so the Figure-5 fold and the window LP do all the work — a child's
// min-guarantee floor becomes mandatory capacity protected under overload,
// and borrow-from-idle-sibling behavior is exactly the LP redistributing
// optional capacity that idle siblings present no demand for. Fold computes
// the same entitlements directly on the tree (one multiplication chain per
// node), which is what the conservation property test compares against the
// flat fold: hierarchy creates and destroys no credit.
package budget

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/agreement"
)

// Errors reported by budget-tree validation.
var (
	// ErrSpec reports a structurally invalid budget tree.
	ErrSpec = errors.New("budget: invalid spec")
	// ErrLease reports an invalid lease operation.
	ErrLease = errors.New("budget: invalid lease")
)

// Node is one principal in a budget tree. Roots carry physical capacity
// (requests/second); every other node's entitlement is a slice of its
// parent's, bounded by [Floor, Ceil] fractions.
type Node struct {
	// Name is the principal name; unique across the whole spec.
	Name string `json:"name"`
	// Capacity is the physical capacity in requests/second. Meaningful on
	// roots only; interior and leaf nodes are backed purely by their
	// parent's grant.
	Capacity float64 `json:"capacity,omitempty"`
	// Floor is the min-guarantee fraction of the parent's currency this
	// node holds even under overload (the agreement lower bound).
	Floor float64 `json:"floor,omitempty"`
	// Ceil is the borrow limit as a fraction of the parent's currency
	// (the agreement upper bound). Zero means 1: borrow freely from idle
	// siblings up to everything the parent has.
	Ceil float64 `json:"ceil,omitempty"`
	// Children are the sub-teams or services funded by this node.
	Children []Node `json:"children,omitempty"`
}

// Spec is a forest of budget trees — typically one root per organization.
type Spec struct {
	Roots []Node `json:"roots"`
}

// ceil returns the node's effective upper bound (zero defaults to 1).
func (n *Node) ceil() float64 {
	if n.Ceil == 0 {
		return 1
	}
	return n.Ceil
}

// Validate checks the spec: unique non-empty names, non-negative root
// capacities, per-node Floor ≤ Ceil ≤ 1, and Σ child floors ≤ 1 at every
// node (the same over-commit rule agreement.SetAgreement enforces).
func (s Spec) Validate() error {
	if len(s.Roots) == 0 {
		return fmt.Errorf("%w: no roots", ErrSpec)
	}
	seen := make(map[string]bool)
	for i := range s.Roots {
		r := &s.Roots[i]
		if r.Capacity < 0 {
			return fmt.Errorf("%w: root %q capacity %v", ErrSpec, r.Name, r.Capacity)
		}
		if err := validateNode(r, seen, true); err != nil {
			return err
		}
	}
	return nil
}

// validateNode recursively checks one subtree.
func validateNode(n *Node, seen map[string]bool, root bool) error {
	if n.Name == "" {
		return fmt.Errorf("%w: empty node name", ErrSpec)
	}
	if seen[n.Name] {
		return fmt.Errorf("%w: duplicate node %q", ErrSpec, n.Name)
	}
	seen[n.Name] = true
	if !root {
		if n.Floor < 0 || n.Floor > 1 {
			return fmt.Errorf("%w: node %q floor %v outside [0, 1]", ErrSpec, n.Name, n.Floor)
		}
		c := n.ceil()
		if c < n.Floor || c > 1 {
			return fmt.Errorf("%w: node %q ceil %v outside [floor, 1]", ErrSpec, n.Name, c)
		}
		if n.Capacity != 0 {
			return fmt.Errorf("%w: non-root node %q carries capacity", ErrSpec, n.Name)
		}
	}
	total := 0.0
	for i := range n.Children {
		total += n.Children[i].Floor
		if err := validateNode(&n.Children[i], seen, false); err != nil {
			return err
		}
	}
	if total > 1+1e-12 {
		return fmt.Errorf("%w: node %q grants %.3f of its currency in floors", ErrSpec, n.Name, total)
	}
	return nil
}

// Compile materializes the budget tree as a fresh agreement system: one
// principal per node (roots carry their capacity) and one direct agreement
// parent→child [Floor, Ceil] per edge. The existing agreement fold and
// window LP then enforce the hierarchy with no new scheduling code.
func Compile(s Spec) (*agreement.System, error) {
	sys := agreement.New()
	if err := CompileInto(sys, s); err != nil {
		return nil, err
	}
	return sys, nil
}

// CompileInto adds the budget tree's principals and chained agreements to
// an existing system (the config loader uses this to mix a hierarchy with
// flat principals and agreements in one deployment).
func CompileInto(sys *agreement.System, s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for i := range s.Roots {
		if err := compileNode(sys, &s.Roots[i], -1); err != nil {
			return err
		}
	}
	return nil
}

// compileNode adds one node and its edge from the parent, then recurses.
func compileNode(sys *agreement.System, n *Node, parent agreement.Principal) error {
	p, err := sys.AddPrincipal(n.Name, n.Capacity)
	if err != nil {
		return err
	}
	if parent >= 0 {
		if err := sys.SetAgreement(parent, p, n.Floor, n.ceil()); err != nil {
			return err
		}
	}
	for i := range n.Children {
		if err := compileNode(sys, &n.Children[i], p); err != nil {
			return err
		}
	}
	return nil
}

// Entitlement is one node's folded budget in requests/second.
type Entitlement struct {
	// MC is the mandatory capacity: what the node is guaranteed even when
	// every sibling is busy (root capacity × Π floors × leak factor).
	MC float64
	// OC is the optional capacity: what the node may additionally borrow
	// when siblings are idle, up to the ceil chain.
	OC float64
}

// Entitlements maps node names to their folded budgets.
type Entitlements map[string]Entitlement

// Total sums mandatory capacity across all nodes. For a valid tree this
// equals the summed root capacities exactly — the conservation property:
// folding a hierarchy neither creates nor destroys guaranteed credit.
func (e Entitlements) Total() float64 {
	t := 0.0
	for _, v := range e {
		t += v.MC
	}
	return t
}

// Fold computes every node's entitlement directly on the tree, without
// building an agreement system: a tree has exactly one path root⇝node, so
// the Figure-5 simple-path sums collapse to one running product per branch.
// The result must agree bit-for-bit in structure (and to float tolerance in
// value) with compiling the tree and running the flat agreement fold —
// the property the budget conservation test pins.
func Fold(s Spec) (Entitlements, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := make(Entitlements)
	for i := range s.Roots {
		r := &s.Roots[i]
		// The root's own fold: MT = 1 (a currency includes its backing),
		// OT = 0 (no path into itself).
		foldNode(out, r, r.Capacity, r.Capacity, 0)
	}
	return out, nil
}

// foldNode computes entitlements for node n given the root capacity v, the
// mandatory flow mand = v·Π floors along the path, and the optional flow
// opt = v·OT (the one-optional-hop path sum). It mirrors agreement.Flows:
//
//	MC = mand·(1 − Σ child floors)
//	OC = opt + mand·Σ child floors   (granted-away value reclaimable while
//	                                  children leave it unused)
func foldNode(out Entitlements, n *Node, v, mand, opt float64) {
	sumLB := 0.0
	for i := range n.Children {
		sumLB += n.Children[i].Floor
	}
	out[n.Name] = Entitlement{
		MC: mand * (1 - sumLB),
		OC: opt + mand*sumLB,
	}
	for i := range n.Children {
		c := &n.Children[i]
		// One more hop: mandatory multiplies by the floor; the optional sum
		// extends every prior optional choice by the ceil and adds the new
		// path whose optional hop is this edge.
		foldNode(out, c, v, mand*c.Floor, opt*c.ceil()+mand*(c.ceil()-c.Floor))
	}
}

// Describe renders the tree with folded entitlements — the operator-facing
// summary cmd/redirector logs at startup for hierarchical deployments.
func Describe(s Spec) string {
	ents, err := Fold(s)
	if err != nil {
		return fmt.Sprintf("budget: %v", err)
	}
	var sb strings.Builder
	sb.WriteString("budget tree (mandatory/optional req/s):\n")
	for i := range s.Roots {
		describeNode(&sb, &s.Roots[i], ents, 1)
	}
	return sb.String()
}

// describeNode renders one subtree at the given indent depth.
func describeNode(sb *strings.Builder, n *Node, ents Entitlements, depth int) {
	e := ents[n.Name]
	fmt.Fprintf(sb, "%s%-16s [%.2f, %.2f]  mc %8.1f  oc %8.1f\n",
		strings.Repeat("  ", depth), n.Name, n.Floor, n.ceil(), e.MC, e.OC)
	for i := range n.Children {
		describeNode(sb, &n.Children[i], ents, depth+1)
	}
}
