// Package vclock provides a deterministic discrete-event scheduler over
// virtual time. The experiment harness (internal/sim) runs the paper's
// multi-minute scenarios in milliseconds of wall time by advancing this
// clock from event to event; because execution is single-threaded and ties
// are broken by scheduling order, runs are exactly reproducible.
package vclock

import (
	"container/heap"
	"time"
)

// Clock is a virtual clock with an event queue. The zero value is ready to
// use and starts at virtual time 0. Clock is not safe for concurrent use:
// the simulation driver owns it.
type Clock struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

// Timer is a handle to a scheduled event, usable for cancellation.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// New returns a clock at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Schedule runs fn at Now()+delay. A non-positive delay schedules the event
// at the current instant, after already-queued events for that instant.
func (c *Clock) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	ev := &event{at: c.now + delay, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, ev)
	return &Timer{ev: ev}
}

// ScheduleEvery runs fn every period, starting one period from now, until
// the returned Ticker is stopped. fn observes the clock already advanced to
// the tick time.
func (c *Clock) ScheduleEvery(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("vclock: ScheduleEvery requires a positive period")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker repeats an event at a fixed virtual period.
type Ticker struct {
	clock   *Clock
	period  time.Duration
	fn      func()
	timer   *Timer
	stopped bool
}

func (t *Ticker) arm() {
	t.timer = t.clock.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Stop()
}

// Step fires the next pending event, advancing the clock to its time. It
// reports false when no events remain.
func (c *Clock) Step() bool {
	for c.events.Len() > 0 {
		ev := heap.Pop(&c.events).(*event)
		if ev.cancelled {
			continue
		}
		c.now = ev.at
		ev.fired = true
		ev.fn()
		return true
	}
	return false
}

// RunUntil fires events in order until the queue is empty or the next event
// lies beyond t; the clock finishes exactly at t.
func (c *Clock) RunUntil(t time.Duration) {
	for c.events.Len() > 0 {
		next := c.events[0]
		if next.cancelled {
			heap.Pop(&c.events)
			continue
		}
		if next.at > t {
			break
		}
		c.Step()
	}
	if c.now < t {
		c.now = t
	}
}

// RunFor advances the clock by d. See RunUntil.
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now + d) }

// Pending reports the number of queued (non-cancelled) events.
func (c *Clock) Pending() int {
	n := 0
	for _, ev := range c.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
