package vclock

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	c := New()
	var order []int
	c.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	c.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	c.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	c.RunUntil(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if c.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", c.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	c.RunFor(time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	c := New()
	fired := false
	c.Schedule(-time.Second, func() { fired = true })
	c.RunFor(0)
	if !fired {
		t.Fatal("negative-delay event did not fire at current instant")
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	c := New()
	var times []time.Duration
	var chain func()
	chain = func() {
		times = append(times, c.Now())
		if len(times) < 3 {
			c.Schedule(10*time.Millisecond, chain)
		}
	}
	c.Schedule(10*time.Millisecond, chain)
	c.RunUntil(time.Second)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestTimerStop(t *testing.T) {
	c := New()
	fired := false
	tm := c.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	c.RunFor(time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if (&Timer{}).Stop() {
		t.Fatal("Stop on zero Timer returned true")
	}
}

func TestTicker(t *testing.T) {
	c := New()
	n := 0
	tk := c.ScheduleEvery(100*time.Millisecond, func() { n++ })
	c.RunUntil(550 * time.Millisecond)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	tk.Stop()
	c.RunUntil(2 * time.Second)
	if n != 5 {
		t.Fatalf("ticker fired after Stop: %d", n)
	}
}

func TestTickerStopFromWithinTick(t *testing.T) {
	c := New()
	n := 0
	var tk *Ticker
	tk = c.ScheduleEvery(10*time.Millisecond, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	c.RunUntil(time.Second)
	if n != 2 {
		t.Fatalf("ticks = %d, want 2", n)
	}
}

func TestRunUntilDoesNotOvershoot(t *testing.T) {
	c := New()
	fired := false
	c.Schedule(100*time.Millisecond, func() { fired = true })
	c.RunUntil(50 * time.Millisecond)
	if fired {
		t.Fatal("future event fired early")
	}
	if c.Now() != 50*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
	c.RunFor(50 * time.Millisecond)
	if !fired {
		t.Fatal("event did not fire at its time")
	}
}

func TestStepAndPending(t *testing.T) {
	c := New()
	if c.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	tm := c.Schedule(time.Millisecond, func() {})
	c.Schedule(2*time.Millisecond, func() {})
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d", c.Pending())
	}
	tm.Stop()
	if c.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d", c.Pending())
	}
	if !c.Step() {
		t.Fatal("Step skipped live event")
	}
	if c.Now() != 2*time.Millisecond {
		t.Fatalf("Step advanced to %v, want 2ms", c.Now())
	}
}

func TestScheduleEveryPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive period")
		}
	}()
	New().ScheduleEvery(0, func() {})
}
