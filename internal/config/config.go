// Package config loads JSON deployment descriptions for the command-line
// tools: the agreement system, the scheduling mode, and the Layer-7/Layer-4
// front-end wiring. It exists so a multi-process deployment (cmd/backend,
// cmd/redirector, cmd/webbench) can share one scenario file.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/agreement"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/topology"
)

// ErrConfig reports an invalid configuration file.
var ErrConfig = errors.New("config: invalid configuration")

// PrincipalSpec declares one principal and its physical capacity in
// requests/second.
type PrincipalSpec struct {
	Name     string  `json:"name"`
	Capacity float64 `json:"capacity"`
}

// AgreementSpec declares one direct agreement by principal names.
type AgreementSpec struct {
	Owner string  `json:"owner"`
	User  string  `json:"user"`
	LB    float64 `json:"lb"`
	UB    float64 `json:"ub"`
}

// TopologyRegion declares one named group of co-located redirectors in a
// hierarchical combining plane.
type TopologyRegion struct {
	Name    string `json:"name"`
	Members []int  `json:"members"`
}

// TopologySpec is the declarative multi-level combining-plane layout:
// named regions compile to regional sub-trees whose sub-roots join a
// global tier (see internal/topology). When present it supersedes the
// flat parent/children/members wiring of the enclosing TreeSpec.
type TopologySpec struct {
	Regions []TopologyRegion `json:"regions"`
	// Fanout bounds children per interior node (default 2).
	Fanout int `json:"fanout"`
	// Sharding selects the principal-sharding policy: "none" (default,
	// one tree over all principals) or "component" (one tree with an
	// independent epoch per disjoint agreement component).
	Sharding string `json:"sharding"`
	// DeltaThreshold, when positive, enables delta compression of
	// upstream queue vectors: a principal's entry is suppressed when none
	// of its statistics moved by more than this since last sent.
	DeltaThreshold float64 `json:"delta_threshold"`
	// DeltaResyncEvery forces a full-state frame every N frames so
	// suppressed drift is bounded (default 16 when compression is on).
	DeltaResyncEvery int `json:"delta_resync_every"`
	// FailureTimeoutMS, when positive, arms hierarchy-aware failure
	// detection: a tree neighbor silent for this long is removed and the
	// plane recompiles without it.
	FailureTimeoutMS int `json:"failure_timeout_ms"`
}

// Spec converts the config form into the topology package's spec (nil
// when the receiver is nil). Defaults are applied by topology.Compile.
func (t *TopologySpec) Spec() *topology.Spec {
	if t == nil {
		return nil
	}
	s := topology.Spec{
		Fanout:   t.Fanout,
		Sharding: t.Sharding,
		Delta: topology.DeltaSpec{
			Threshold:   t.DeltaThreshold,
			ResyncEvery: t.DeltaResyncEvery,
		},
	}
	for _, r := range t.Regions {
		s.Regions = append(s.Regions, topology.Region{
			Name:    r.Name,
			Members: append([]int(nil), r.Members...),
		})
	}
	return &s
}

// TreeSpec wires this process into the combining tree.
type TreeSpec struct {
	NodeID     int               `json:"node_id"`
	Parent     int               `json:"parent"` // -1 for root
	Children   []int             `json:"children"`
	Peers      map[string]string `json:"peers"` // node id (decimal) → addr
	ListenAddr string            `json:"listen_addr"`
	// Topology, when present, lays the plane out hierarchically and
	// supersedes the flat Parent/Children/Members/Fanout wiring; the
	// node's placement is computed from its node_id and the spec.
	Topology *TopologySpec `json:"topology"`
	// FailureTimeoutMS, when positive, arms the reparenter: a tree
	// neighbor silent for this long is cut out of the topology and the
	// node rewires itself around it.
	//
	// Deprecated: with a topology spec, set topology.failure_timeout_ms
	// instead.
	FailureTimeoutMS int `json:"failure_timeout_ms"`
	// Members lists every node id in the tree (defaults to this node plus
	// the peer map's keys). The reparenter rebuilds topologies from this
	// set, so all nodes must agree on it.
	//
	// Deprecated: declare a topology spec instead; it carries the member
	// set per region.
	Members []int `json:"members"`
	// Fanout is the tree arity used when rebuilding topologies after a
	// failure (default 2).
	//
	// Deprecated: with a topology spec, set topology.fanout instead.
	Fanout int `json:"fanout"`
}

// HealthSpec configures active backend health checking. A zero/missing spec
// disables it; a present spec enables it with per-field defaults from
// internal/health.
type HealthSpec struct {
	IntervalMS       int     `json:"interval_ms"`
	TimeoutMS        int     `json:"timeout_ms"`
	FailThreshold    int     `json:"fail_threshold"`
	SuccessThreshold int     `json:"success_threshold"`
	BackoffMaxMS     int     `json:"backoff_max_ms"`
	Jitter           float64 `json:"jitter"`
	Seed             int64   `json:"seed"`
}

// Options converts the spec into health checker options (nil when the spec
// itself is nil).
func (h *HealthSpec) Options() *health.Options {
	if h == nil {
		return nil
	}
	return &health.Options{
		Interval:         time.Duration(h.IntervalMS) * time.Millisecond,
		Timeout:          time.Duration(h.TimeoutMS) * time.Millisecond,
		FailThreshold:    h.FailThreshold,
		SuccessThreshold: h.SuccessThreshold,
		BackoffMax:       time.Duration(h.BackoffMaxMS) * time.Millisecond,
		Jitter:           h.Jitter,
		Seed:             h.Seed,
	}
}

// TraceSpec enables request-span tracing on the front-end. A present spec
// arms the span ring and the /v1/debug/trace endpoint; the flight recorder
// (and /v1/debug/flight) additionally needs SLOMS or an under-floor trigger
// to ever fire, but is always mounted alongside tracing.
type TraceSpec struct {
	// SampleEvery head-samples one request in N (<=0 selects the obs
	// default; 1 traces everything).
	SampleEvery int `json:"sample_every"`
	// SlowestK tail-keeps the K slowest requests of every window regardless
	// of sampling (<=0 selects the obs default).
	SlowestK int `json:"slowest_k"`
	// Depth is the span ring capacity (<=0 selects the obs default).
	Depth int `json:"depth"`
	// SLOMS, when positive, arms the flight recorder's latency trigger: a
	// kept span slower than this freezes a forensic capture.
	SLOMS float64 `json:"slo_ms"`
	// FlightDir, when set, persists each flight capture as a JSON file
	// under this directory in addition to the in-memory ring.
	FlightDir string `json:"flight_dir"`
	// FlightMax bounds retained captures (<=0 selects the obs default).
	FlightMax int `json:"flight_max"`
}

// TraceConfig converts the spec into the obs tracer configuration (nil when
// the spec itself is nil).
func (t *TraceSpec) TraceConfig() *obs.TraceConfig {
	if t == nil {
		return nil
	}
	return &obs.TraceConfig{
		SampleEvery: t.SampleEvery,
		SlowestK:    t.SlowestK,
		Depth:       t.Depth,
	}
}

// FlightConfig converts the spec into the flight-recorder configuration
// (nil when the spec itself is nil).
func (t *TraceSpec) FlightConfig() *obs.FlightConfig {
	if t == nil {
		return nil
	}
	return &obs.FlightConfig{
		Max: t.FlightMax,
		SLO: time.Duration(t.SLOMS * float64(time.Millisecond)),
		Dir: t.FlightDir,
	}
}

// CtrlSpec enables the dynamic agreement control plane on the front-end:
// the /v1/agreements and /v1/principals admin endpoints accept runtime
// renegotiations, versioned and rolled out behind the combining tree's
// epoch gate. Enable it on the tree root only.
type CtrlSpec struct {
	Enabled bool `json:"enabled"`
	// RolloutLeadEpochs is how many tree epochs ahead of the current one a
	// rollout is gated (<=0 selects ctrlplane.DefaultLead).
	RolloutLeadEpochs int `json:"rollout_lead_epochs"`
}

// L7Spec configures a Layer-7 redirector front-end.
type L7Spec struct {
	Addr string `json:"addr"`
	// Orgs maps the URL org segment to a principal name.
	Orgs map[string]string `json:"orgs"`
	// Backends maps an owner principal name to backend base URLs.
	Backends map[string][]string `json:"backends"`
	// Proxy selects single-round-trip operation: the redirector forwards
	// admitted requests to the backend itself instead of answering 302.
	Proxy bool `json:"proxy"`
}

// L4Spec configures a Layer-4 redirector front-end.
type L4Spec struct {
	// Services maps a principal name to its listen address (VIP analogue).
	Services map[string]string `json:"services"`
	// Backends maps an owner principal name to backend TCP addresses.
	Backends map[string][]string `json:"backends"`
}

// File is the root of a scenario description.
type File struct {
	Mode           string          `json:"mode"` // "community" or "provider"
	WindowMS       int             `json:"window_ms"`
	NumRedirectors int             `json:"num_redirectors"`
	StalenessMS    int             `json:"staleness_ms"`
	Principals     []PrincipalSpec `json:"principals"`
	Agreements     []AgreementSpec `json:"agreements"`
	// Budget declares hierarchical principals as a forest of budget trees
	// (org → team → service; see internal/budget). Each tree compiles into
	// chained agreements on top of the flat Principals/Agreements lists, so
	// both forms mix freely in one deployment; node names share the flat
	// principals' namespace.
	Budget   []budget.Node      `json:"budget"`
	Provider string             `json:"provider"`
	Prices   map[string]float64 `json:"prices"`
	L7       *L7Spec            `json:"l7"`
	L4       *L4Spec            `json:"l4"`
	Tree     *TreeSpec          `json:"tree"`
	// Health, when present, enables active backend health checking and
	// capacity re-interpretation on the front-end.
	Health *HealthSpec `json:"health"`
	// Ctrl, when present and enabled, attaches the dynamic agreement
	// control plane to the front-end's admin surface.
	Ctrl *CtrlSpec `json:"ctrl"`
	// Trace, when present, enables request-span tracing, tail sampling, and
	// the SLO flight recorder on the front-end.
	Trace *TraceSpec `json:"trace"`
	// AdminAddr, when set, serves the versioned admin endpoints
	// (/v1/metrics, /v1/debug/windows, /v1/agreements, /debug/pprof) on a
	// dedicated listener. The Layer-7 redirector also mounts them on its
	// traffic listener; Layer-4 has no HTTP server, so this is its only
	// scrape point.
	AdminAddr string `json:"admin_addr"`
	// AdmissionShards sets the sharded admission plane's credit shard
	// count on both front-ends (0 selects GOMAXPROCS; see
	// internal/admission).
	AdmissionShards int `json:"admission_shards"`
	// StateDir, when set, arms the durable-state plane (internal/persist):
	// each redirector process keeps its agreement-set snapshots and
	// window-record log under <state_dir>/redirector-<id> and recovers
	// from them at the next boot. Empty disables persistence (a crash
	// rejoins blind, as a cold node).
	StateDir string `json:"state_dir"`
}

// Field names are canonically snake_case. Earlier revisions accepted
// camelCase spellings for some of them; each deprecated spelling decodes
// with a warning emitted once per field per process (a config with three
// aliased fields warns three times on first parse, then never again, no
// matter how often a long-lived process reloads it). Keys are scoped by the
// object that holds them ("" is the top level).
var fieldAliases = map[string]map[string]string{
	"": {
		"windowMS":        "window_ms",
		"numRedirectors":  "num_redirectors",
		"stalenessMS":     "staleness_ms",
		"adminAddr":       "admin_addr",
		"admissionShards": "admission_shards",
	},
	"tree": {
		"nodeId":           "node_id",
		"listenAddr":       "listen_addr",
		"failureTimeoutMS": "failure_timeout_ms",
	},
	"health": {
		"intervalMS":       "interval_ms",
		"timeoutMS":        "timeout_ms",
		"failThreshold":    "fail_threshold",
		"successThreshold": "success_threshold",
		"backoffMaxMS":     "backoff_max_ms",
	},
	"ctrl": {
		"rolloutLeadEpochs": "rollout_lead_epochs",
	},
}

// aliasWarned makes each deprecated spelling warn once per field per
// process, not once per Parse call (long-lived processes reload configs).
var aliasWarned sync.Map

// configLog returns the logger deprecation warnings go to; a package
// variable so tests can capture and count the warnings.
var configLog = func() *obs.Logger { return obs.Default().With("config") }

func applyAliases(m map[string]json.RawMessage, scope string) {
	for old, canon := range fieldAliases[scope] {
		v, ok := m[old]
		if !ok {
			continue
		}
		if _, exists := m[canon]; !exists {
			m[canon] = v
		}
		delete(m, old)
		key := scope + "." + old
		if _, dup := aliasWarned.LoadOrStore(key, true); !dup {
			configLog().Warn("deprecated field name",
				"field", strings.TrimPrefix(key, "."), "use", canon)
		}
	}
}

// canonicalize rewrites deprecated camelCase field spellings to their
// snake_case forms before the typed decode. Unknown fields pass through
// untouched; a non-object document is returned as-is for the typed decode
// to reject with its own error.
func canonicalize(data []byte) []byte {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return data
	}
	applyAliases(raw, "")
	for scope := range fieldAliases {
		if scope == "" {
			continue
		}
		sub, ok := raw[scope]
		if !ok {
			continue
		}
		var sm map[string]json.RawMessage
		if err := json.Unmarshal(sub, &sm); err != nil || sm == nil {
			continue
		}
		applyAliases(sm, scope)
		enc, err := json.Marshal(sm)
		if err != nil {
			continue
		}
		raw[scope] = enc
	}
	out, err := json.Marshal(raw)
	if err != nil {
		return data
	}
	return out
}

// Parse decodes and sanity-checks a scenario. Deprecated camelCase field
// spellings are accepted with a warning emitted once per field per process;
// see fieldAliases.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(canonicalize(data), &f); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if f.Mode != "community" && f.Mode != "provider" {
		return nil, fmt.Errorf("%w: mode must be community or provider, got %q", ErrConfig, f.Mode)
	}
	if len(f.Principals) == 0 && len(f.Budget) == 0 {
		return nil, fmt.Errorf("%w: no principals", ErrConfig)
	}
	if len(f.Budget) > 0 {
		if err := (budget.Spec{Roots: f.Budget}).Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
	}
	if f.Mode == "provider" && f.Provider == "" {
		return nil, fmt.Errorf("%w: provider mode needs a provider name", ErrConfig)
	}
	if f.Tree != nil {
		if f.Tree.Topology != nil {
			if err := f.Tree.Topology.Spec().Normalize().Validate(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrConfig, err)
			}
		} else {
			warnFlatTreeKey(len(f.Tree.Members) > 0, "members")
			warnFlatTreeKey(f.Tree.Fanout != 0, "fanout")
			warnFlatTreeKey(f.Tree.FailureTimeoutMS != 0, "failure_timeout_ms")
		}
	}
	return &f, nil
}

// warnFlatTreeKey emits a once-per-key-per-process deprecation warning for a
// flat tree layout key used without a topology spec. Flat configs keep
// working; the warning steers operators to the declarative form.
func warnFlatTreeKey(set bool, key string) {
	if !set {
		return
	}
	if _, dup := aliasWarned.LoadOrStore("tree."+key+"(flat)", true); !dup {
		configLog().Warn("deprecated flat tree key",
			"field", "tree."+key, "use", "tree.topology")
	}
}

// Load reads and parses a scenario file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// BuildSystem materializes the agreement system.
func (f *File) BuildSystem() (*agreement.System, error) {
	s := agreement.New()
	for _, p := range f.Principals {
		if _, err := s.AddPrincipal(p.Name, p.Capacity); err != nil {
			return nil, err
		}
	}
	for _, a := range f.Agreements {
		owner, ok := s.Lookup(a.Owner)
		if !ok {
			return nil, fmt.Errorf("%w: unknown owner %q", ErrConfig, a.Owner)
		}
		user, ok := s.Lookup(a.User)
		if !ok {
			return nil, fmt.Errorf("%w: unknown user %q", ErrConfig, a.User)
		}
		if err := s.SetAgreement(owner, user, a.LB, a.UB); err != nil {
			return nil, err
		}
	}
	if len(f.Budget) > 0 {
		if err := budget.CompileInto(s, budget.Spec{Roots: f.Budget}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// BuildEngine materializes the enforcement engine.
func (f *File) BuildEngine() (*core.Engine, error) {
	s, err := f.BuildSystem()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		System:         s,
		Window:         time.Duration(f.WindowMS) * time.Millisecond,
		NumRedirectors: f.NumRedirectors,
		Staleness:      time.Duration(f.StalenessMS) * time.Millisecond,
	}
	switch f.Mode {
	case "community":
		cfg.Mode = core.Community
	case "provider":
		cfg.Mode = core.Provider
		p, ok := s.Lookup(f.Provider)
		if !ok {
			return nil, fmt.Errorf("%w: unknown provider %q", ErrConfig, f.Provider)
		}
		cfg.ProviderPrincipal = p
		if len(f.Prices) > 0 {
			cfg.Prices = make(map[agreement.Principal]float64, len(f.Prices))
			for name, price := range f.Prices {
				cp, ok := s.Lookup(name)
				if !ok {
					return nil, fmt.Errorf("%w: price for unknown principal %q", ErrConfig, name)
				}
				cfg.Prices[cp] = price
			}
		}
	}
	return core.NewEngine(cfg)
}

// ResolvePrincipals maps a name-keyed map to principal-keyed, validating
// every name against the system.
func ResolvePrincipals(s *agreement.System, byName map[string][]string) (map[agreement.Principal][]string, error) {
	out := make(map[agreement.Principal][]string, len(byName))
	for name, v := range byName {
		p, ok := s.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("%w: unknown principal %q", ErrConfig, name)
		}
		out[p] = v
	}
	return out, nil
}
