package config

import (
	"testing"
)

// FuzzParse must never panic and, when parsing succeeds, BuildSystem and
// BuildEngine must either succeed or fail cleanly.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte(`{"mode":"community","principals":[{"name":"A","capacity":1}]}`))
	f.Add([]byte(`{"mode":"provider","provider":"A","principals":[{"name":"A","capacity":1}],"prices":{"A":2}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"mode":"community","principals":[{"name":"A","capacity":-5}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Parse(data)
		if err != nil {
			return
		}
		if cfg.Mode != "community" && cfg.Mode != "provider" {
			t.Fatalf("Parse accepted invalid mode %q", cfg.Mode)
		}
		// Building may fail (bad names, bad bounds) but must not panic.
		if sys, err := cfg.BuildSystem(); err == nil && sys.NumPrincipals() == 0 {
			t.Fatal("BuildSystem returned an empty system without error")
		}
		_, _ = cfg.BuildEngine()
	})
}
