package config

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/topology"
)

const sample = `{
  "mode": "provider",
  "window_ms": 50,
  "num_redirectors": 2,
  "staleness_ms": 0,
  "principals": [
    {"name": "S", "capacity": 320},
    {"name": "A", "capacity": 0},
    {"name": "B", "capacity": 0}
  ],
  "agreements": [
    {"owner": "S", "user": "A", "lb": 0.2, "ub": 1.0},
    {"owner": "S", "user": "B", "lb": 0.8, "ub": 1.0}
  ],
  "provider": "S",
  "prices": {"A": 2, "B": 1},
  "l7": {
    "addr": "127.0.0.1:0",
    "orgs": {"alpha": "A", "beta": "B"},
    "backends": {"S": ["http://127.0.0.1:9000"]}
  }
}`

func TestParseAndBuild(t *testing.T) {
	f, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := f.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumPrincipals() != 3 {
		t.Fatalf("principals = %d", sys.NumPrincipals())
	}
	sp, _ := sys.Lookup("S")
	a, _ := sys.Lookup("A")
	lb, ub, ok := sys.AgreementBetween(sp, a)
	if !ok || lb != 0.2 || ub != 1.0 {
		t.Fatalf("agreement = %v %v %v", lb, ub, ok)
	}
	eng, err := f.BuildEngine()
	if err != nil {
		t.Fatal(err)
	}
	if eng.Window().Milliseconds() != 50 {
		t.Fatalf("window = %v", eng.Window())
	}
	if got := len(eng.Customers()); got != 2 {
		t.Fatalf("customers = %d", got)
	}
	backends, err := ResolvePrincipals(sys, f.L7.Backends)
	if err != nil {
		t.Fatal(err)
	}
	if len(backends[sp]) != 1 {
		t.Fatalf("backends = %v", backends)
	}
}

func TestLoadFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mode != "provider" || f.L7 == nil || f.L7.Orgs["alpha"] != "A" {
		t.Fatalf("loaded = %+v", f)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"mode": "weird", "principals": [{"name":"A"}]}`,
		`{"mode": "community", "principals": []}`,
		`{"mode": "provider", "principals": [{"name":"A"}]}`,
	}
	for i, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	f, err := Parse([]byte(`{
	  "mode": "community",
	  "principals": [{"name": "A", "capacity": 10}],
	  "agreements": [{"owner": "A", "user": "ghost", "lb": 0.1, "ub": 0.5}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.BuildSystem(); err == nil {
		t.Fatal("unknown user accepted")
	}

	f2, err := Parse([]byte(`{
	  "mode": "provider", "provider": "ghost",
	  "principals": [{"name": "A", "capacity": 10}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.BuildEngine(); err == nil {
		t.Fatal("unknown provider accepted")
	}

	f3, err := Parse([]byte(`{
	  "mode": "provider", "provider": "A",
	  "principals": [{"name": "A", "capacity": 10}],
	  "prices": {"ghost": 2}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f3.BuildEngine(); err == nil {
		t.Fatal("price for unknown principal accepted")
	}
}

func TestResolvePrincipalsUnknown(t *testing.T) {
	f, err := Parse([]byte(`{"mode":"community","principals":[{"name":"A","capacity":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := f.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResolvePrincipals(sys, map[string][]string{"ghost": {"x"}}); err == nil {
		t.Fatal("unknown principal resolved")
	}
}

func TestDeprecatedFieldAliases(t *testing.T) {
	f, err := Parse([]byte(`{
	  "mode": "community",
	  "windowMS": 250,
	  "numRedirectors": 3,
	  "stalenessMS": 900,
	  "adminAddr": "127.0.0.1:9100",
	  "principals": [{"name": "A", "capacity": 10}],
	  "tree": {"nodeId": 4, "parent": -1, "listenAddr": "127.0.0.1:0", "failureTimeoutMS": 1500},
	  "health": {"intervalMS": 50, "timeoutMS": 20, "failThreshold": 2, "successThreshold": 3, "backoffMaxMS": 400},
	  "ctrl": {"enabled": true, "rolloutLeadEpochs": 4}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.WindowMS != 250 || f.NumRedirectors != 3 || f.StalenessMS != 900 || f.AdminAddr != "127.0.0.1:9100" {
		t.Fatalf("top-level aliases not applied: %+v", f)
	}
	if f.Tree == nil || f.Tree.NodeID != 4 || f.Tree.ListenAddr != "127.0.0.1:0" || f.Tree.FailureTimeoutMS != 1500 {
		t.Fatalf("tree aliases not applied: %+v", f.Tree)
	}
	if f.Health == nil || f.Health.IntervalMS != 50 || f.Health.TimeoutMS != 20 ||
		f.Health.FailThreshold != 2 || f.Health.SuccessThreshold != 3 || f.Health.BackoffMaxMS != 400 {
		t.Fatalf("health aliases not applied: %+v", f.Health)
	}
	if f.Ctrl == nil || !f.Ctrl.Enabled || f.Ctrl.RolloutLeadEpochs != 4 {
		t.Fatalf("ctrl aliases not applied: %+v", f.Ctrl)
	}
}

func TestCanonicalFieldWinsOverAlias(t *testing.T) {
	f, err := Parse([]byte(`{
	  "mode": "community",
	  "window_ms": 100, "windowMS": 999,
	  "principals": [{"name": "A", "capacity": 10}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.WindowMS != 100 {
		t.Fatalf("alias overrode canonical field: window_ms = %d", f.WindowMS)
	}
}

// treeFlat and treeHier are the same two-node deployment written in the
// deprecated flat tree form and the declarative topology form.
const treeFlat = `{
  "mode": "community",
  "window_ms": 100,
  "num_redirectors": 2,
  "principals": [{"name": "A", "capacity": 10}],
  "tree": {
    "node_id": 0, "parent": -1, "children": [1],
    "peers": {"1": "127.0.0.1:7001"}, "listen_addr": "127.0.0.1:7000",
    "members": [0, 1], "fanout": 2, "failure_timeout_ms": 1500
  }
}`

const treeHier = `{
  "mode": "community",
  "window_ms": 100,
  "num_redirectors": 2,
  "principals": [{"name": "A", "capacity": 10}],
  "tree": {
    "node_id": 0,
    "peers": {"1": "127.0.0.1:7001"}, "listen_addr": "127.0.0.1:7000",
    "topology": {
      "regions": [
        {"name": "east", "members": [0]},
        {"name": "west", "members": [1]}
      ],
      "fanout": 2,
      "sharding": "component",
      "delta_threshold": 0.5,
      "delta_resync_every": 8,
      "failure_timeout_ms": 1500
    }
  }
}`

// TestTreeConfigRoundTrip checks that both tree forms parse, survive a
// marshal/re-parse round trip, and that the topology form converts into
// a valid compiled plane.
func TestTreeConfigRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		raw  string
	}{{"flat", treeFlat}, {"topology", treeHier}} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Parse([]byte(tc.raw))
			if err != nil {
				t.Fatal(err)
			}
			enc, err := json.Marshal(f)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Parse(enc)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if !reflect.DeepEqual(f, g) {
				t.Fatalf("round trip changed the config:\n%+v\n%+v", f, g)
			}
		})
	}

	flat, err := Parse([]byte(treeFlat))
	if err != nil {
		t.Fatal(err)
	}
	if flat.Tree.Topology != nil {
		t.Fatalf("flat form grew a topology: %+v", flat.Tree.Topology)
	}
	if len(flat.Tree.Members) != 2 || flat.Tree.Fanout != 2 || flat.Tree.FailureTimeoutMS != 1500 {
		t.Fatalf("flat keys not preserved: %+v", flat.Tree)
	}

	hier, err := Parse([]byte(treeHier))
	if err != nil {
		t.Fatal(err)
	}
	spec := hier.Tree.Topology.Spec()
	if spec == nil {
		t.Fatal("nil topology spec")
	}
	pl, err := topology.Compile(*spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pl.Members()); got != 2 {
		t.Fatalf("members = %d", got)
	}
	if spec.Sharding != topology.ShardComponent || spec.Delta.Threshold != 0.5 || spec.Delta.ResyncEvery != 8 {
		t.Fatalf("topology tuning lost: %+v", spec)
	}
	if hier.Tree.Topology.FailureTimeoutMS != 1500 {
		t.Fatalf("failure timeout lost: %+v", hier.Tree.Topology)
	}
}

// TestTopologySpecRejected checks that a malformed topology fails Parse
// instead of surfacing at node boot.
func TestTopologySpecRejected(t *testing.T) {
	_, err := Parse([]byte(`{
	  "mode": "community",
	  "principals": [{"name": "A", "capacity": 10}],
	  "tree": {"node_id": 0, "listen_addr": "127.0.0.1:0",
	           "topology": {"regions": [{"name": "east", "members": [0]},
	                                    {"name": "east", "members": [1]}]}}
	}`))
	if err == nil {
		t.Fatal("duplicate region name accepted")
	}
}

// TestAliasWarningOncePerFieldPerProcess pins the documented warning
// semantics: each deprecated spelling warns exactly once per process — a
// config with two aliased fields warns twice on first parse, and reloading
// the same config warns zero more times.
func TestAliasWarningOncePerFieldPerProcess(t *testing.T) {
	var buf bytes.Buffer
	oldLog := configLog
	configLog = func() *obs.Logger { return obs.NewLogger(&buf, obs.LevelWarn).With("config") }
	aliasWarned = sync.Map{}
	defer func() { configLog = oldLog }()

	doc := []byte(`{
	  "mode": "community",
	  "windowMS": 250,
	  "stalenessMS": 900,
	  "principals": [{"name": "A", "capacity": 10}]
	}`)
	for reload := 0; reload < 3; reload++ {
		if _, err := Parse(doc); err != nil {
			t.Fatal(err)
		}
	}
	if got := strings.Count(buf.String(), "deprecated field name"); got != 2 {
		t.Fatalf("warned %d times over 3 parses of 2 aliased fields, want exactly 2:\n%s",
			got, buf.String())
	}
	// A not-yet-seen alias still warns — the suppression is per field, not
	// one warning per process total.
	if _, err := Parse([]byte(`{
	  "mode": "community",
	  "numRedirectors": 2,
	  "principals": [{"name": "A", "capacity": 10}]
	}`)); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "deprecated field name"); got != 3 {
		t.Fatalf("fresh alias suppressed: %d warnings, want 3:\n%s", got, buf.String())
	}
}

// TestBudgetTreeConfig compiles a scenario-file budget forest into chained
// agreements alongside flat principals.
func TestBudgetTreeConfig(t *testing.T) {
	f, err := Parse([]byte(`{
	  "mode": "provider",
	  "provider": "org",
	  "principals": [{"name": "standalone", "capacity": 40}],
	  "budget": [{
	    "name": "org", "capacity": 120, "children": [
	      {"name": "team", "floor": 0.5, "children": [
	        {"name": "svc-a", "floor": 0.5},
	        {"name": "svc-b", "floor": 0.5}
	      ]},
	      {"name": "batch", "floor": 0.25}
	    ]
	  }]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := f.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumPrincipals() != 6 {
		t.Fatalf("principals = %d, want 6 (1 flat + 5 tree nodes)", sys.NumPrincipals())
	}
	org, ok := sys.Lookup("org")
	if !ok || sys.Capacity(org) != 120 {
		t.Fatalf("root not compiled: %v %v", ok, sys.Capacity(org))
	}
	team, _ := sys.Lookup("team")
	if lb, ub, ok := sys.AgreementBetween(org, team); !ok || lb != 0.5 || ub != 1 {
		t.Fatalf("org→team agreement = %v %v %v, want [0.5, 1]", lb, ub, ok)
	}
	// An invalid tree is rejected at Parse time, not BuildSystem time.
	if _, err := Parse([]byte(`{
	  "mode": "community",
	  "budget": [{"name": "org", "capacity": 10, "children": [
	    {"name": "a", "floor": 0.8}, {"name": "b", "floor": 0.8}]}]
	}`)); err == nil {
		t.Fatal("over-committed budget tree accepted")
	}
}
