package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/agreement"
	"repro/internal/obs"
)

// Redirector is one admission point. It is not safe for concurrent use;
// callers (the simulation loop, or the network front-ends which serialize
// through a mutex) own it.
type Redirector struct {
	e  *Engine
	id int

	arrivals []float64 // submissions observed in the current window
	estimate []float64 // EWMA of per-window demand ("estimated queue length")

	global   []float64 // latest global queue aggregate (requests/window)
	globalAt time.Duration
	haveGlob bool

	// Per-principal aggregate freshness: with principal sharding, each
	// agreement component's tree delivers its aggregate independently, so
	// principals age out of date at different times (SetGlobalComponent).
	globalAtP  []time.Duration
	globalHasP []bool
	freshBuf   []bool // scratch for the per-window freshness mask

	// rolloutEpoch/rolloutKnown feed the engine's epoch gate: the combining
	// tree epoch this redirector has reached and the newest agreement-set
	// version it has learned of (see SetRollout and Engine.stateFor).
	rolloutEpoch int
	rolloutKnown uint64

	nbuf []float64 // scratch for the per-window global n_i vector

	// credits[p][k]: remaining admissions for principal p toward owner k's
	// servers this window (Community). Provider mode uses creditsTotal only.
	credits      [][]float64
	creditsTotal []float64

	// admittedP[p]: admissions made for principal p in the current window,
	// in average-request cost units (window trace records).
	admittedP []float64

	// Window tracing: pending is the reusable record describing the open
	// window; it is completed (Arrived/Served) and committed when the next
	// StartWindow closes it. Nil obsv disables tracing entirely.
	obsv        *obs.Observer
	pending     *obs.Record
	pendingOpen bool

	// Window telemetry.
	Admitted     int
	Rejected     int
	Windows      int
	Conservative int // windows run in conservative fallback
	// Partial counts mixed windows: at least one agreement component had a
	// fresh aggregate (planned normally) while another was stale and fell
	// back to its conservative share.
	Partial int
}

// NewRedirector stamps out admission state for one redirector node and
// registers it with the engine's rollout gate: a staged configuration is
// promoted only after every registered, non-evicted redirector has
// crossed. Registration is idempotent per id — a restarted redirector
// re-registering under its old identity does not inflate the quorum, and
// any eviction recorded against the id is cleared (the fresh instance is
// re-admitted through the laggard conservative-fallback path until it
// learns the current set).
func (e *Engine) NewRedirector(id int) *Redirector {
	e.mu.Lock()
	e.registered[id] = true
	delete(e.evicted, id)
	e.mu.Unlock()
	r := &Redirector{
		e:            e,
		id:           id,
		arrivals:     make([]float64, e.n),
		estimate:     make([]float64, e.n),
		creditsTotal: make([]float64, e.n),
		credits:      make([][]float64, e.n),
		admittedP:    make([]float64, e.n),
	}
	for i := range r.credits {
		r.credits[i] = make([]float64, e.n)
	}
	return r
}

// ID returns the redirector's identity.
func (r *Redirector) ID() int { return r.id }

// LocalEstimate returns the redirector's current per-principal demand
// estimate in requests per window — the vector it contributes to the
// combining tree.
func (r *Redirector) LocalEstimate() []float64 {
	return r.LocalEstimateInto(nil)
}

// LocalEstimateInto is LocalEstimate writing into dst when it has the right
// capacity, so per-window callers (the combining-tree feed) can reuse one
// buffer instead of allocating every window. It returns the filled slice.
func (r *Redirector) LocalEstimateInto(dst []float64) []float64 {
	if cap(dst) < len(r.estimate) {
		dst = make([]float64, len(r.estimate))
	}
	dst = dst[:len(r.estimate)]
	copy(dst, r.estimate)
	return dst
}

// SetGlobal installs the latest global queue-length aggregate (the Sum
// vector broadcast by the combining tree) with its generation time.
func (r *Redirector) SetGlobal(queues []float64, at time.Duration) {
	r.ensureGlobal()
	copy(r.global, queues)
	r.globalAt = at
	r.haveGlob = true
	for i := range r.globalAtP {
		r.globalAtP[i] = at
		r.globalHasP[i] = true
	}
}

// SetGlobalComponent installs one agreement component's aggregate:
// queues[k] is the global figure for principal members[k]. Each component's
// tree settles independently under principal sharding, so freshness is
// tracked per principal — StartWindow plans normally for principals whose
// component is fresh and claims the conservative share for the rest.
func (r *Redirector) SetGlobalComponent(members []int, queues []float64, at time.Duration) {
	r.ensureGlobal()
	for k, p := range members {
		if p < 0 || p >= r.e.n || k >= len(queues) {
			continue
		}
		r.global[p] = queues[k]
		r.globalAtP[p] = at
		r.globalHasP[p] = true
	}
	if at > r.globalAt {
		r.globalAt = at
	}
	r.haveGlob = true
}

// ensureGlobal lazily sizes the aggregate-tracking state.
func (r *Redirector) ensureGlobal() {
	if r.global == nil {
		r.global = make([]float64, r.e.n)
	}
	if r.globalAtP == nil {
		r.globalAtP = make([]time.Duration, r.e.n)
		r.globalHasP = make([]bool, r.e.n)
	}
}

// HasGlobal reports whether any global aggregate has been received.
func (r *Redirector) HasGlobal() bool { return r.haveGlob }

// SetRollout records the redirector's rollout position before a window:
// epoch is its current combining-tree epoch (use the max of the local and
// global-broadcast epochs) and known the newest agreement-set version
// received from the tree. The next StartWindow passes both to the engine's
// epoch gate, which decides whether this admission point swaps to a staged
// configuration generation at that window boundary. Call from the goroutine
// that owns the redirector.
func (r *Redirector) SetRollout(epoch int, known uint64) {
	r.rolloutEpoch = epoch
	r.rolloutKnown = known
}

// SetObserver attaches a window-trace observer (nil detaches). The
// redirector fills one record per scheduling window and commits it when the
// next window closes it; the record path performs zero heap allocations.
// Call from the goroutine that owns the redirector.
func (r *Redirector) SetObserver(o *obs.Observer) {
	r.obsv = o
	r.pendingOpen = false
	r.pending = nil
	if o != nil {
		r.pending = o.NewRecord()
	}
}

// Observer returns the attached window-trace observer (nil when tracing is
// off).
func (r *Redirector) Observer() *obs.Observer { return r.obsv }

// closeWindowRecord completes and commits the pending record: arrivals and
// admissions of the window that just ended become its outcome.
func (r *Redirector) closeWindowRecord() {
	if r.obsv == nil || !r.pendingOpen {
		return
	}
	copy(r.pending.Arrived, r.arrivals)
	copy(r.pending.Served, r.admittedP)
	r.obsv.Commit(r.pending)
	r.pendingOpen = false
}

// openWindowRecord resets the reusable record for the window starting now.
// Returns nil when tracing is off.
func (r *Redirector) openWindowRecord(now time.Duration) *obs.Record {
	if r.obsv == nil {
		return nil
	}
	rec := r.pending
	rec.Window = uint64(r.Windows)
	rec.AtNanos = obs.Nanos(now)
	rec.Conservative, rec.HaveGlobal, rec.SolveErr, rec.CacheHit = false, false, false, false
	rec.Degraded = false
	rec.GlobalAgeNanos, rec.SolveNanos = 0, 0
	copy(rec.Local, r.estimate)
	for i := range rec.Global {
		rec.Global[i], rec.Granted[i], rec.Floor[i], rec.Ceil[i] = 0, 0, 0, 0
		rec.Arrived[i], rec.Served[i] = 0, 0
	}
	r.obsv.FillTree(rec)
	r.obsv.FillHealth(rec)
	r.pendingOpen = true
	return rec
}

// StartWindow closes the previous scheduling window and computes admission
// credits for the next one. now is the current (virtual or wall) time used
// for staleness checks.
func (r *Redirector) StartWindow(now time.Duration) error {
	// Close the finished window's trace record while its arrivals and
	// admissions are still intact.
	r.closeWindowRecord()
	r.Windows++
	// Fold the finished window's arrivals into the demand estimate.
	alpha := r.e.cfg.EWMAAlpha
	for i := 0; i < r.e.n; i++ {
		r.estimate[i] = alpha*r.arrivals[i] + (1-alpha)*r.estimate[i]
		if r.estimate[i] < 1e-9 {
			r.estimate[i] = 0
		}
		r.arrivals[i] = 0
		r.admittedP[i] = 0
	}

	st, lagging := r.e.stateFor(r.id, r.rolloutEpoch, r.rolloutKnown)
	rec := r.openWindowRecord(now)
	if rec != nil {
		rec.ConfigVersion = uint64(st.version)
	}
	// lagging marks a redirector past a rollout's gate epoch that has not
	// received the new agreement set: its entitlements are superseded, so it
	// falls back to the conservative claim like any other blind window.
	stale := !r.haveGlob || lagging
	// Per-principal freshness: under principal sharding each component's
	// aggregate ages independently. A nil mask means every principal is
	// fresh; an all-stale mask collapses into the blind path below.
	var fresh []bool
	if !stale {
		fresh = r.freshMask(now)
		if fresh != nil {
			any := false
			for _, f := range fresh {
				if f {
					any = true
					break
				}
			}
			if !any {
				stale, fresh = true, nil
			}
		}
	}
	if stale {
		r.Conservative++
		if rec != nil {
			rec.Conservative = true
			rec.HaveGlobal = r.haveGlob
			if r.haveGlob {
				rec.GlobalAgeNanos = obs.Nanos(now - r.globalAt)
			}
		}
		r.conservativeCredits(st, rec)
		return nil
	}

	// Global n_i, with self-inclusion: the aggregate lags, so a principal's
	// global figure can miss this redirector's own fresh demand. Using
	// max(global, local) keeps the local fraction ≤ 1.
	if r.nbuf == nil {
		r.nbuf = make([]float64, r.e.n)
	}
	n := r.nbuf
	for i := 0; i < r.e.n; i++ {
		n[i] = r.global[i]
		if r.estimate[i] > n[i] {
			n[i] = r.estimate[i]
		}
	}
	var solveStart time.Time
	if rec != nil {
		copy(rec.Global, n)
		rec.HaveGlobal = true
		rec.GlobalAgeNanos = obs.Nanos(now - r.globalAt)
		solveStart = time.Now()
	}

	switch r.e.cfg.Mode {
	case Community:
		// Plans come from the engine's shared cache: redirectors holding the
		// same quantized aggregate share one LP solve per window. Cached
		// plans are shared and must not be mutated.
		plan, hit, err := r.e.communityPlan(st, n)
		if rec != nil {
			rec.SolveNanos = obs.Nanos(time.Since(solveStart))
			rec.CacheHit = hit
		}
		if err != nil {
			r.markSolveErr(rec)
			return fmt.Errorf("core: window schedule: %w", err)
		}
		for i := 0; i < r.e.n; i++ {
			if fresh != nil && !fresh[i] {
				// This principal's component aggregate is stale: claim the
				// conservative share while the rest of the window plans
				// normally.
				r.conservativeCommunity(st, rec, i)
				continue
			}
			frac := 0.0
			if n[i] > 0 {
				frac = r.estimate[i] / n[i]
			}
			carried := 0.0
			for k := 0; k < r.e.n; k++ {
				c := carry(r.credits[i][k])
				carried += c
				r.credits[i][k] = plan.X[i][k]*frac + c
			}
			if rec != nil {
				rec.Granted[i] = plan.Total[i] * frac
				floor := st.access.MC[i]
				if n[i] < floor {
					floor = n[i]
				}
				rec.Floor[i] = floor * frac
				rec.Ceil[i] = (st.access.MC[i]+st.access.OC[i])*frac + carried
			}
			r.depositLeaseCommunity(rec, i, frac)
		}
	case Provider:
		plan, hit, err := r.e.providerPlan(st, n)
		if rec != nil {
			rec.SolveNanos = obs.Nanos(time.Since(solveStart))
			rec.CacheHit = hit
		}
		if err != nil {
			r.markSolveErr(rec)
			return fmt.Errorf("core: window schedule: %w", err)
		}
		for i := range r.creditsTotal {
			c := carry(r.creditsTotal[i])
			r.creditsTotal[i] = c
			if rec != nil {
				rec.Ceil[i] = c // carried slack; customers add their share below
			}
		}
		for ci, p := range st.customers {
			if fresh != nil && !fresh[p] {
				// Stale component: conservative share on top of the carried
				// credit installed above.
				r.conservativeProvider(st, rec, int(p), r.creditsTotal[p])
				continue
			}
			frac := 0.0
			if n[p] > 0 {
				frac = r.estimate[p] / n[p]
			}
			r.creditsTotal[p] += plan.X[ci] * frac
			if rec != nil {
				rec.Granted[p] = plan.X[ci] * frac
				floor := st.access.MC[p]
				if n[p] < floor {
					floor = n[p]
				}
				rec.Floor[p] = floor * frac
				rec.Ceil[p] += (st.access.MC[p] + st.access.OC[p]) * frac
			}
			r.depositLeaseProvider(rec, int(p), frac)
		}
	}
	if fresh != nil {
		r.Partial++
	}
	return nil
}

// freshMask returns the per-principal aggregate-freshness mask for a
// window starting at now, or nil when every principal is fresh (the flat
// single-tree fast path: SetGlobal stamps all principals together).
func (r *Redirector) freshMask(now time.Duration) []bool {
	if r.globalAtP == nil {
		return nil
	}
	mixed := false
	for i := range r.globalAtP {
		if !r.freshAt(i, now) {
			mixed = true
			break
		}
	}
	if !mixed {
		return nil
	}
	if r.freshBuf == nil {
		r.freshBuf = make([]bool, r.e.n)
	}
	for i := range r.freshBuf {
		r.freshBuf[i] = r.freshAt(i, now)
	}
	return r.freshBuf
}

// freshAt reports whether principal i's component aggregate is usable at
// now (received, and inside the staleness budget when one is configured).
func (r *Redirector) freshAt(i int, now time.Duration) bool {
	if !r.globalHasP[i] {
		return false
	}
	return r.e.cfg.Staleness <= 0 || now-r.globalAtP[i] <= r.e.cfg.Staleness
}

// markSolveErr tags the pending record of a window whose LP failed: the
// previous credits stay in force, so no bound can be asserted (the MaxFloat64
// ceiling sentinel makes the auditor skip the over-admission check).
func (r *Redirector) markSolveErr(rec *obs.Record) {
	if rec == nil {
		return
	}
	rec.SolveErr = true
	for i := range rec.Ceil {
		rec.Floor[i] = 0
		rec.Ceil[i] = math.MaxFloat64
	}
}

// carry preserves up to one request of unused credit across windows so that
// fractional per-window allocations (for example 13.5 requests/window) are
// not systematically rounded away.
func carry(remaining float64) float64 {
	if remaining < 0 {
		return 0
	}
	if remaining > 1 {
		return 1
	}
	return remaining
}

// conservativeCredits claims 1/R of every mandatory entitlement — the safe
// allocation when a redirector does not know what the rest of the system is
// doing (Figure 8, phase 1). The grant doubles as floor and ceiling in the
// trace record: a blind window must admit exactly its conservative share.
func (r *Redirector) conservativeCredits(st schedState, rec *obs.Record) {
	switch r.e.cfg.Mode {
	case Community:
		for i := 0; i < r.e.n; i++ {
			r.conservativeCommunity(st, rec, i)
		}
	case Provider:
		for _, p := range st.customers {
			r.conservativeProvider(st, rec, int(p), carry(r.creditsTotal[p]))
		}
	}
}

// conservativeShare is the blind claim fraction: 1/R of every mandatory
// entitlement (1 under the AggressiveWhenBlind ablation).
func (r *Redirector) conservativeShare() float64 {
	if r.e.cfg.AggressiveWhenBlind {
		return 1 // ablation only; see Config.AggressiveWhenBlind
	}
	return 1 / float64(r.e.cfg.NumRedirectors)
}

// conservativeCommunity claims principal i's conservative share in
// Community mode (whole-window fallback, or a single stale component in a
// mixed window).
func (r *Redirector) conservativeCommunity(st schedState, rec *obs.Record, i int) {
	share := r.conservativeShare()
	carried := 0.0
	for k := 0; k < r.e.n; k++ {
		c := carry(r.credits[i][k])
		carried += c
		r.credits[i][k] = st.access.MI[k][i]*share + c
	}
	if rec != nil {
		g := st.access.MC[i] * share
		rec.Granted[i], rec.Floor[i] = g, g
		rec.Ceil[i] = g + carried
	}
	r.depositLeaseCommunity(rec, i, share)
}

// conservativeProvider claims customer p's conservative share in Provider
// mode on top of the already-carried credit c.
func (r *Redirector) conservativeProvider(st schedState, rec *obs.Record, p int, c float64) {
	share := r.conservativeShare()
	g := st.access.MC[p] * share
	r.creditsTotal[p] = g + c
	if rec != nil {
		rec.Granted[p], rec.Floor[p] = g, g
		rec.Ceil[p] = g + c
	}
	r.depositLeaseProvider(rec, p, share)
}

// depositLeaseCommunity adds principal i's lease credit for this window on
// top of the LP-planned Community credits. scale is this redirector's share
// of the holder's global demand (frac on the fresh path, the conservative
// 1/R on blind or stale windows), so the fleet-wide deposit sums to about
// the leased rate. The deposit widens Granted and Ceil in the trace record —
// admitting leased work is never an over-admission — but leaves Floor alone:
// a holder is not obliged to draw its lease, and the under-floor audit must
// not flag the idle case.
func (r *Redirector) depositLeaseCommunity(rec *obs.Record, i int, scale float64) {
	lc := r.e.leases.Load()
	if lc == nil || lc.matrix == nil || scale <= 0 {
		return
	}
	d := 0.0
	for k := 0; k < r.e.n; k++ {
		v := lc.matrix[i][k] * scale
		r.credits[i][k] += v
		d += v
	}
	if d > 0 && rec != nil {
		rec.Granted[i] += d
		rec.Ceil[i] += d
	}
}

// depositLeaseProvider is depositLeaseCommunity for Provider mode: the
// holder's leased total lands in its single credit bucket.
func (r *Redirector) depositLeaseProvider(rec *obs.Record, p int, scale float64) {
	lc := r.e.leases.Load()
	if lc == nil || lc.total == nil || scale <= 0 {
		return
	}
	v := lc.total[p] * scale
	if v <= 0 {
		return
	}
	r.creditsTotal[p] += v
	if rec != nil {
		rec.Granted[p] += v
		rec.Ceil[p] += v
	}
}

// Decision is the outcome of admitting one request.
type Decision struct {
	// Admitted is false when the request must be turned away for this
	// window (HTTP self-redirect at Layer 7, kernel queue at Layer 4).
	Admitted bool
	// Owner is the principal whose servers should process the request
	// (meaningful only when Admitted).
	Owner agreement.Principal
}

// Admit decides one request from principal p within the current window and
// records the arrival for demand estimation. In Community mode the request
// is directed at the owner with the most remaining credit; in Provider mode
// all servers belong to the provider.
func (r *Redirector) Admit(p agreement.Principal) Decision {
	return r.AdmitCost(p, -1, 1)
}

// AdmitPreferring is Admit with connection affinity: when the preferred
// owner still has credit for p this window, the request sticks to it;
// otherwise the best-funded owner is used — affinity "to the extent allowed
// by the sharing agreements" (§4.2). A negative preference means none.
func (r *Redirector) AdmitPreferring(p, preferred agreement.Principal) Decision {
	return r.AdmitCost(p, preferred, 1)
}

// AdmitCost is the general admission primitive: a request consuming cost
// units of the average request ("large requests are treated as multiple
// small ones for the purpose of scheduling", §4). Non-positive costs are
// treated as 1.
func (r *Redirector) AdmitCost(p, preferred agreement.Principal, cost float64) Decision {
	if int(p) < 0 || int(p) >= r.e.n {
		return Decision{}
	}
	if cost <= 0 {
		cost = 1
	}
	r.arrivals[p] += cost
	need := cost - 1e-9
	switch r.e.cfg.Mode {
	case Provider:
		if r.creditsTotal[p] >= need {
			r.creditsTotal[p] -= cost
			r.Admitted++
			r.admittedP[p] += cost
			return Decision{Admitted: true, Owner: r.e.cfg.ProviderPrincipal}
		}
	case Community:
		if int(preferred) >= 0 && int(preferred) < r.e.n && r.credits[p][preferred] >= need {
			r.credits[p][preferred] -= cost
			r.Admitted++
			r.admittedP[p] += cost
			return Decision{Admitted: true, Owner: preferred}
		}
		best, bestCredit := -1, 0.0
		for k := 0; k < r.e.n; k++ {
			if c := r.credits[p][k]; c > bestCredit {
				best, bestCredit = k, c
			}
		}
		if best >= 0 && bestCredit >= need {
			r.credits[p][best] -= cost
			r.Admitted++
			r.admittedP[p] += cost
			return Decision{Admitted: true, Owner: agreement.Principal(best)}
		}
	}
	r.Rejected++
	return Decision{}
}

// ExportCredits copies the current window's credit state into the caller's
// buffers: matrix[p][k] receives the Community credits, total[p] the Provider
// credits. Either argument may be nil to skip that mode. Buffers must be
// pre-sized to NumPrincipals; the sharded admission plane uses this to
// distribute a freshly scheduled window's credits over its shards.
func (r *Redirector) ExportCredits(matrix [][]float64, total []float64) {
	if matrix != nil {
		for i := range r.credits {
			copy(matrix[i], r.credits[i])
		}
	}
	if total != nil {
		copy(total, r.creditsTotal)
	}
}

// ImportCredits overwrites the current credit state from the caller's
// buffers (the inverse of ExportCredits; nil skips a mode). The sharded
// admission plane calls this just before StartWindow with the unused credit
// recovered from the retired shard pool, so the standard ≤1-request carry is
// computed from what the shards actually left behind.
func (r *Redirector) ImportCredits(matrix [][]float64, total []float64) {
	if matrix != nil {
		for i := range r.credits {
			copy(r.credits[i], matrix[i])
		}
	}
	if total != nil {
		copy(r.creditsTotal, total)
	}
}

// ExportEstimate copies the EWMA per-principal demand estimate into dst
// (allocated when nil or undersized) and returns it — the estimator half
// of a durable window checkpoint (internal/persist).
func (r *Redirector) ExportEstimate(dst []float64) []float64 {
	if cap(dst) < len(r.estimate) {
		dst = make([]float64, len(r.estimate))
	}
	dst = dst[:len(r.estimate)]
	copy(dst, r.estimate)
	return dst
}

// RestoreState rehydrates a freshly constructed redirector from a durable
// window checkpoint: the window counter, the EWMA demand estimate, and the
// carried credit (matrix for Community, total vector for Provider). Nil
// slices skip that piece; slices shorter than NumPrincipals restore a
// prefix. Call before the first StartWindow, from the goroutine that owns
// the redirector. The restored credits are the recovered process's carry
// basis — at most one window of credit (the one in flight at the crash) is
// lost, bounded by the persist append cadence.
func (r *Redirector) RestoreState(windows int, estimate []float64, credits [][]float64, total []float64) {
	if windows > r.Windows {
		r.Windows = windows
	}
	for i := 0; i < r.e.n && i < len(estimate); i++ {
		r.estimate[i] = estimate[i]
	}
	for i := 0; i < r.e.n && i < len(credits); i++ {
		for k := 0; k < r.e.n && k < len(credits[i]); k++ {
			r.credits[i][k] = credits[i][k]
		}
	}
	for i := 0; i < r.e.n && i < len(total); i++ {
		r.creditsTotal[i] = total[i]
	}
}

// AddWindowSample folds externally observed admission activity into the
// window state: arrivals and admitted are per-principal cost sums since the
// last fold, admits/rejects the corresponding decision counts. Concurrent
// front-ends that count arrivals on sharded atomics use this to deliver one
// aggregate sample per window instead of calling AdmitCost per request.
// Either slice may be nil.
func (r *Redirector) AddWindowSample(arrivals, admitted []float64, admits, rejects int) {
	for i := 0; i < r.e.n && i < len(arrivals); i++ {
		r.arrivals[i] += arrivals[i]
	}
	for i := 0; i < r.e.n && i < len(admitted); i++ {
		r.admittedP[i] += admitted[i]
	}
	r.Admitted += admits
	r.Rejected += rejects
}

// Presolve warms the engine's shared plan cache with the plan the next
// StartWindow will need, using the freshest global aggregate. Called off the
// request path (on combining-tree broadcast arrival), it makes the window
// boundary's solve a cache hit so the boundary never stalls on the LP. A
// no-op when the redirector is blind, the aggregate is stale, or plan
// caching is disabled.
func (r *Redirector) Presolve(now time.Duration) {
	if !r.haveGlob {
		return
	}
	if r.e.cfg.Staleness > 0 && now-r.globalAt > r.e.cfg.Staleness {
		return
	}
	// Deliberately snapshot the *active* generation rather than consulting
	// the rollout gate: gate crossings happen at window boundaries, and
	// pre-warming the outgoing generation's cache is at worst one wasted
	// solve per rollout.
	st := r.e.snapshot()
	if r.nbuf == nil {
		r.nbuf = make([]float64, r.e.n)
	}
	n := r.nbuf
	for i := 0; i < r.e.n; i++ {
		n[i] = r.global[i]
		if r.estimate[i] > n[i] {
			n[i] = r.estimate[i]
		}
	}
	switch r.e.cfg.Mode {
	case Community:
		if st.plans != nil {
			_, _, _ = r.e.communityPlan(st, n)
		}
	case Provider:
		if st.provPlans != nil {
			_, _, _ = r.e.providerPlan(st, n)
		}
	}
}

// CreditsRemaining reports the remaining admissions for principal p across
// all owners this window (diagnostics and tests).
func (r *Redirector) CreditsRemaining(p agreement.Principal) float64 {
	if int(p) < 0 || int(p) >= r.e.n {
		return 0
	}
	if r.e.cfg.Mode == Provider {
		return r.creditsTotal[p]
	}
	total := 0.0
	for k := 0; k < r.e.n; k++ {
		total += r.credits[p][k]
	}
	return total
}
