package core

import (
	"math"
	"testing"
	"time"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// TestLeaseDepositProviderConservative pins the blind-window deposit: a
// customer holding a lease gets its conservative mandatory share plus the
// full leased rate (share 1/R with R=1), on top of nothing else.
func TestLeaseDepositProviderConservative(t *testing.T) {
	e, _, b := providerEngine(t, 1)
	r := e.NewRedirector(0)
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	base := r.CreditsRemaining(b)
	if base <= 0 {
		t.Fatalf("no baseline credit for B: %v", base)
	}

	total := make([]float64, e.NumPrincipals())
	total[b] = 100 // req/s → 10 req/window at 100ms
	if err := e.SetLeaseCredits(nil, total); err != nil {
		t.Fatal(err)
	}
	if err := r.StartWindow(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got := r.CreditsRemaining(b)
	// Conservative claim replaces (not accumulates) the mandatory share; the
	// delta over baseline is the per-window lease deposit plus the standard
	// ≤1-request carry from the untouched first window.
	if want := base + 10 + 1; !approx(got, want) {
		t.Fatalf("leased blind credit for B = %v, want %v", got, want)
	}

	// Clearing the snapshot removes the deposit from the next window.
	if err := e.SetLeaseCredits(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.StartWindow(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := r.CreditsRemaining(b); !approx(got, base+1) {
		t.Fatalf("credit after lease clear = %v, want baseline+carry %v", got, base+1)
	}
}

// TestLeaseDepositCommunityConservative is the Community-mode counterpart:
// the deposit lands in the holder→owner credit cell named by the matrix.
func TestLeaseDepositCommunityConservative(t *testing.T) {
	e, a, b := communityEngine(t, 1)
	r := e.NewRedirector(0)
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	base := r.CreditsRemaining(a)

	matrix := make([][]float64, e.NumPrincipals())
	for i := range matrix {
		matrix[i] = make([]float64, e.NumPrincipals())
	}
	matrix[a][b] = 50 // A draws 50 req/s of leased credit on B's servers
	if err := e.SetLeaseCredits(matrix, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.StartWindow(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// base + the 5-request deposit + one carried request per funded owner
	// cell (A holds credit on both A's and B's servers).
	if got, want := r.CreditsRemaining(a), base+5+2; !approx(got, want) {
		t.Fatalf("leased blind credit for A = %v, want %v", got, want)
	}
	// The deposit must be directed at owner B: admitting for A drains it.
	admitted := 0
	for q := 0; q < 60; q++ {
		if d := r.Admit(a); d.Admitted {
			admitted++
		}
	}
	if admitted < int(base) {
		t.Fatalf("admitted %d of 60 for A, want at least the baseline %v", admitted, base)
	}
}

// TestLeaseDepositScalesWithDemandFraction checks the fresh path: the
// deposit is scaled by the redirector's share of the holder's global demand,
// so a holder whose demand is entirely local receives the full rate once its
// estimator converges.
func TestLeaseDepositScalesWithDemandFraction(t *testing.T) {
	e, _, b := providerEngine(t, 1)
	r := e.NewRedirector(0)
	total := make([]float64, e.NumPrincipals())
	total[b] = 100
	if err := e.SetLeaseCredits(nil, total); err != nil {
		t.Fatal(err)
	}
	demand := make([]float64, e.NumPrincipals())
	demand[b] = 20 // req/window
	var withLease float64
	now := time.Duration(0)
	for w := 0; w < 30; w++ {
		r.SetGlobal(demand, now)
		if err := r.StartWindow(now); err != nil {
			t.Fatal(err)
		}
		withLease = r.CreditsRemaining(b)
		for q := 0.0; q < demand[b]; q++ {
			r.Admit(b)
		}
		now += 100 * time.Millisecond
	}
	// Converged: frac → 1, so the window holds the planned grant for 20
	// requests of demand plus the 10-request lease deposit (±1 carry).
	if withLease < 28 {
		t.Fatalf("converged leased credit = %v, want ≥ 28 (plan ≈ 20 + deposit 10)", withLease)
	}
	rates := e.LeaseCredits()
	if rates == nil || !approx(rates[b], 100) {
		t.Fatalf("LeaseCredits = %v, want 100 req/s for B", rates)
	}
}

// TestSetLeaseCreditsValidates rejects malformed snapshots.
func TestSetLeaseCreditsValidates(t *testing.T) {
	e, _, _ := providerEngine(t, 1)
	if err := e.SetLeaseCredits(nil, []float64{1}); err == nil {
		t.Fatal("short totals accepted")
	}
	if err := e.SetLeaseCredits(make([][]float64, 1), nil); err == nil {
		t.Fatal("short matrix accepted")
	}
	bad := make([]float64, e.NumPrincipals())
	bad[0] = -1
	if err := e.SetLeaseCredits(nil, bad); err == nil {
		t.Fatal("negative rate accepted")
	}
	if e.LeaseCredits() != nil {
		t.Fatal("failed SetLeaseCredits installed a snapshot")
	}
}
