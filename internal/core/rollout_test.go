package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/obs"
)

// stageRenegotiation clones the engine's system, renegotiates B→A to
// [lb, ub], and stages the resulting snapshot behind gateEpoch — the same
// set a ctrlplane.Plane would publish.
func stageRenegotiation(t *testing.T, e *Engine, a, b agreement.Principal, lb, ub float64, version uint64, gateEpoch int) {
	t.Helper()
	clone := e.System().Clone()
	if err := clone.SetAgreement(b, a, lb, ub); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StageSet(clone.Snapshot(version), gateEpoch); err != nil {
		t.Fatal(err)
	}
}

// TestEpochGatedSwapGolden pins the rollout contract at the swap boundary:
// with a set staged behind gate epoch 8 and both redirectors learning the
// version before the gate, every window runs a single agreement version
// fleet-wide — the generation flips for both redirectors at exactly the
// gate window, the auditor sees zero mixed-version windows, and no window
// (including the boundary one) under-serves a mandatory floor.
func TestEpochGatedSwapGolden(t *testing.T) {
	const (
		gate    = 8
		windows = 12
	)
	e, a, b := communityEngine(t, 2)
	auditor := obs.NewAuditor(e.PrincipalNames())
	reds := make([]*Redirector, 2)
	for i := range reds {
		reds[i] = e.NewRedirector(i)
		reds[i].SetObserver(e.NewObserver(i, auditor, windows+2))
	}
	if mc := e.Access().MC[a]; mc != 48 {
		t.Fatalf("initial MC_A = %v, want 48", mc)
	}

	// knownAt simulates tree propagation: redirector 0 holds version 1 from
	// epoch 5, redirector 1 from epoch 6 — both before the gate.
	knownAt := func(id, epoch int) uint64 {
		if epoch >= 5+id {
			return 1
		}
		return 0
	}
	global := []float64{80, 40}
	var settledA, settledB int64
	for w := 1; w <= windows+1; w++ {
		now := time.Duration(w) * 100 * time.Millisecond
		for id, r := range reds {
			r.SetGlobal(global, now)
			r.SetRollout(w, knownAt(id, w))
			if err := r.StartWindow(now); err != nil {
				t.Fatal(err)
			}
			// Window demand: both principals over their floors, so the
			// auditor's under-floor check is armed every window.
			for k := 0; k < 60; k++ {
				r.Admit(a)
				r.Admit(b)
			}
		}
		if w == 4 {
			stageRenegotiation(t, e, a, b, 0.25, 0.25, 1, gate)
			if info := e.Rollout(); info.Staged == 0 || info.GateEpoch != gate {
				t.Fatalf("staging missing: %+v", info)
			}
		}
		if w == 6 {
			// Demand estimates have settled; from here through the swap and
			// beyond, no window may under-serve a floor. (Windows 1-4 carry
			// EWMA warm-up transients unrelated to the rollout.)
			settledA, settledB = auditor.UnderMC(int(a)), auditor.UnderMC(int(b))
		}
	}

	if mc := e.Access().MC[a]; mc != 40 {
		t.Fatalf("post-swap MC_A = %v, want 40", mc)
	}
	info := e.Rollout()
	if info.Staged != 0 || info.Rollouts != 1 {
		t.Fatalf("rollout did not converge: %+v", info)
	}

	// Golden version sequence: one generation per window, flip at the gate,
	// identical across redirectors.
	v0 := uint64(0)
	for id, r := range reds {
		recs := r.obsv.Ring().Snapshot(windows + 2)
		if len(recs) < windows {
			t.Fatalf("redirector %d has %d records", id, len(recs))
		}
		for _, rec := range recs {
			if rec.ConfigVersion == 0 {
				t.Fatalf("redirector %d window %d has no config version", id, rec.Window)
			}
			if v0 == 0 {
				v0 = recs[0].ConfigVersion // oldest record, pre-swap
			}
			want := v0
			if int(rec.Window) >= gate {
				want = v0 + 1
			}
			if rec.ConfigVersion != want {
				t.Fatalf("redirector %d window %d ran version %d, want %d",
					id, rec.Window, rec.ConfigVersion, want)
			}
		}
	}
	if mixed := auditor.MixedVersion(); mixed != 0 {
		t.Fatalf("%d mixed-version windows", mixed)
	}
	if dA, dB := auditor.UnderMC(int(a))-settledA, auditor.UnderMC(int(b))-settledB; dA != 0 || dB != 0 {
		t.Fatalf("under-floor windows across the swap: A +%d, B +%d", dA, dB)
	}
}

// TestLaggingRedirectorConservative pins the fallback: a redirector whose
// epoch passes the gate without having received the staged version must not
// run the old entitlements as if nothing happened — it falls back to the
// conservative claim, and the rollout holds (no promotion) until every
// registered redirector has crossed.
func TestLaggingRedirectorConservative(t *testing.T) {
	e, a, b := communityEngine(t, 2)
	r0, r1 := e.NewRedirector(0), e.NewRedirector(1)
	global := []float64{80, 40}
	for w := 1; w <= 3; w++ {
		now := time.Duration(w) * 100 * time.Millisecond
		for _, r := range []*Redirector{r0, r1} {
			r.SetGlobal(global, now)
			r.SetRollout(w, 0)
			if err := r.StartWindow(now); err != nil {
				t.Fatal(err)
			}
		}
	}
	stageRenegotiation(t, e, a, b, 0.25, 0.25, 1, 5)

	// Window 6 is past the gate. Redirector 0 has the set; redirector 1
	// never received it.
	now := 600 * time.Millisecond
	r0.SetGlobal(global, now)
	r0.SetRollout(6, 1)
	if err := r0.StartWindow(now); err != nil {
		t.Fatal(err)
	}
	r1.SetGlobal(global, now)
	r1.SetRollout(6, 0)
	consBefore := r1.Conservative
	if err := r1.StartWindow(now); err != nil {
		t.Fatal(err)
	}
	if r1.Conservative != consBefore+1 {
		t.Fatalf("lagging redirector did not fall back to the conservative claim (%d → %d)",
			consBefore, r1.Conservative)
	}
	if info := e.Rollout(); info.Staged == 0 || info.Rollouts != 0 {
		t.Fatalf("rollout promoted with a lagging redirector: %+v", info)
	}

	// The set arrives one window later: both cross, the generation commits.
	now = 700 * time.Millisecond
	for _, r := range []*Redirector{r0, r1} {
		r.SetGlobal(global, now)
		r.SetRollout(7, 1)
		if err := r.StartWindow(now); err != nil {
			t.Fatal(err)
		}
	}
	if info := e.Rollout(); info.Staged != 0 || info.Rollouts != 1 {
		t.Fatalf("rollout did not converge after the set arrived: %+v", info)
	}
	if mc := e.Access().MC[a]; mc != 40 {
		t.Fatalf("post-swap MC_A = %v, want 40", mc)
	}
}

// TestStageSetIdempotent guards re-delivery: the tree may hand the same
// versioned set to the engine many times (every broadcast repeats the newest
// config); only the first staging may act.
func TestStageSetIdempotent(t *testing.T) {
	e, a, b := communityEngine(t, 0)
	clone := e.System().Clone()
	if err := clone.SetAgreement(b, a, 0.25, 0.25); err != nil {
		t.Fatal(err)
	}
	set := clone.Snapshot(1)
	v1, err := e.StageSet(set, 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.StageSet(set, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("re-delivered set produced a new generation: %d then %d", v1, v2)
	}
	if got := e.Access().MC[a]; got != 40 {
		t.Fatalf("MC_A = %v, want 40", got)
	}
}

// TestConcurrentRolloutRace hammers the rollout machinery from many
// goroutines — windows starting, admissions flowing, sets staging,
// capacities re-interpreting — and relies on -race to flag any unsynchronized
// access. Run with: go test -race.
func TestConcurrentRolloutRace(t *testing.T) {
	e, a, b := communityEngine(t, 4)
	const iters = 200
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		r := e.NewRedirector(id)
		wg.Add(1)
		go func(id int, r *Redirector) {
			defer wg.Done()
			global := []float64{80, 40}
			for w := 1; w <= iters; w++ {
				now := time.Duration(w) * time.Millisecond
				r.SetGlobal(global, now)
				r.SetRollout(w, uint64(w/2))
				if err := r.StartWindow(now); err != nil {
					t.Error(err)
					return
				}
				r.Admit(a)
				r.Admit(b)
			}
		}(id, r)
	}
	// The staging goroutine models the tree-delivery path: sets are built from
	// a private base system (a ctrlplane.Plane's clone, or a decoded network
	// payload) — never from the engine's live system, which mutators own.
	base := e.System().Clone()
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			lb := 0.25
			if i%2 == 1 {
				lb = 0.5
			}
			clone := base.Clone()
			if err := clone.SetAgreement(b, a, lb, lb); err != nil {
				continue
			}
			if _, err := e.StageSet(clone.Snapshot(uint64(i+1)), i*4); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			caps := []float64{320, 320}
			if i%2 == 1 {
				caps = []float64{160, 160}
			}
			if _, err := e.UpdateCapacities(caps); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
