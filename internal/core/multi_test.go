package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/agreement"
)

// multiEngine: owner S with transaction and bandwidth dimensions; customers
// A (bandwidth-heavy, 10 KB/request) and B (1 KB/request), each [0.25, 1].
func multiEngine(t testing.TB, txCap, bwCap float64) (*Engine, agreement.Principal, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 0) // scalar capacity unused in multi mode
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.25, 1)
	s.MustSetAgreement(sp, b, 0.25, 1)
	e, err := NewEngine(Config{
		Mode:   Community,
		System: s,
		MultiResource: &MultiResourceConfig{
			Capacities: [][]float64{
				{txCap, 0, 0},
				{bwCap, 0, 0},
			},
			Costs: [][]float64{
				{1, 1},
				{1, 10},
				{1, 1},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, a, b
}

func TestMultiEngineValidation(t *testing.T) {
	s := agreement.New()
	s.MustAddPrincipal("S", 10)
	if _, err := NewEngine(Config{
		Mode: Provider, System: s,
		MultiResource: &MultiResourceConfig{Capacities: [][]float64{{10}}, Costs: [][]float64{{1}}},
	}); err == nil {
		t.Error("multi-resource provider mode accepted")
	}
	if _, err := NewEngine(Config{
		Mode: Community, System: s,
		MultiResource: &MultiResourceConfig{},
	}); err == nil {
		t.Error("zero dimensions accepted")
	}
	if _, err := NewEngine(Config{
		Mode: Community, System: s,
		MultiResource: &MultiResourceConfig{Capacities: [][]float64{{1, 2}}, Costs: [][]float64{{1}}},
	}); err == nil {
		t.Error("wrong capacity length accepted")
	}
}

func TestMultiEngineBandwidthBound(t *testing.T) {
	// 1000 tx/s but only 400 KB/s: A is bandwidth-bound.
	e, a, b := multiEngine(t, 1000, 400)
	r := e.NewRedirector(0)
	// Per window: A demand 10, B demand 10.
	admitted := pump(t, r, []float64{0, 10, 10}, 20)
	// From the scheduler model: B floor = min(250, 100)·w clipped to 10;
	// A capped by bandwidth: (40 − 10·1)/10 ⇒ 3 requests/window.
	if math.Abs(admitted[b]-10) > 1 {
		t.Fatalf("B admitted %v/window, want ≈10", admitted[b])
	}
	if math.Abs(admitted[a]-3) > 1 {
		t.Fatalf("A admitted %v/window, want ≈3 (bandwidth-bound)", admitted[a])
	}
	// Admitted byte rate never exceeds the bandwidth budget.
	bytes := admitted[a]*10 + admitted[b]*1
	if bytes > 40+1 {
		t.Fatalf("bandwidth/window = %v KB, budget 40", bytes)
	}
}

func TestMultiEngineConservativeFallback(t *testing.T) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 0)
	a := s.MustAddPrincipal("A", 0)
	s.MustSetAgreement(sp, a, 0.5, 1)
	e, err := NewEngine(Config{
		Mode: Community, System: s, NumRedirectors: 2,
		MultiResource: &MultiResourceConfig{
			Capacities: [][]float64{{1000, 0}, {400, 0}},
			Costs:      [][]float64{{1, 1}, {1, 10}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A's request-denominated mandatory: min(0.5·1000, 0.5·400/10) = 20/s
	// = 2/window; conservative half ⇒ 1/window.
	if got := e.Access().MC[a]; math.Abs(got-2) > 1e-9 {
		t.Fatalf("synthetic MC[A]/window = %v, want 2", got)
	}
	r := e.NewRedirector(0)
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for i := 0; i < 10; i++ {
		if r.Admit(a).Admitted {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("blind multi admissions = %d, want 1", admitted)
	}
	if !strings.Contains(e.DescribeEntitlements(), "20.0") {
		t.Fatalf("DescribeEntitlements = %q", e.DescribeEntitlements())
	}
}

func TestUpdateMultiResource(t *testing.T) {
	e, a, _ := multiEngine(t, 1000, 400)
	base := e.Access().MC[a]
	// Bandwidth doubles: A's binding dimension relaxes.
	if _, err := e.UpdateMultiResource([][]float64{{1000, 0, 0}, {800, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if got := e.Access().MC[a]; math.Abs(got-2*base) > 1e-9 {
		t.Fatalf("MC[A] after bandwidth doubling = %v, want %v", got, 2*base)
	}
	// Invalid update rolls back.
	if _, err := e.UpdateMultiResource([][]float64{{1}}); err == nil {
		t.Fatal("bad capacity vector accepted")
	}
	if got := e.Access().MC[a]; math.Abs(got-2*base) > 1e-9 {
		t.Fatal("failed update corrupted state")
	}
	// Single-resource updater is rejected on multi engines.
	if _, err := e.UpdateCapacities([]float64{1, 2, 3}); err == nil {
		t.Fatal("UpdateCapacities accepted on multi engine")
	}
	// And UpdateMultiResource is rejected on single-resource engines.
	e2, _, _ := communityEngine(t, 1)
	if _, err := e2.UpdateMultiResource([][]float64{{1, 2}}); err == nil {
		t.Fatal("UpdateMultiResource accepted on scalar engine")
	}
}

func TestMultiEngineWindowScaling(t *testing.T) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 0)
	a := s.MustAddPrincipal("A", 0)
	s.MustSetAgreement(sp, a, 1, 1)
	e, err := NewEngine(Config{
		Mode: Community, System: s,
		Window: 200 * time.Millisecond,
		MultiResource: &MultiResourceConfig{
			Capacities: [][]float64{{100, 0}},
			Costs:      [][]float64{{1}, {2}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 units/s at cost 2 ⇒ 50 req/s ⇒ 10 per 200 ms window.
	if got := e.Access().MC[a]; math.Abs(got-10) > 1e-9 {
		t.Fatalf("MC[A]/window = %v, want 10", got)
	}
}
