package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/agreement"
)

// TestSharedPlanCacheCollapsesSolves is the engine-level fast-path contract:
// R redirectors holding the same global aggregate cost one LP solve per
// window, not R.
func TestSharedPlanCacheCollapsesSolves(t *testing.T) {
	const R = 4
	e, _, _ := communityEngine(t, R)
	reds := make([]*Redirector, R)
	for i := range reds {
		reds[i] = e.NewRedirector(i)
	}
	global := []float64{80, 40}
	const windows = 10
	now := time.Duration(0)
	for w := 0; w < windows; w++ {
		for _, r := range reds {
			r.SetGlobal(global, now)
			if err := r.StartWindow(now); err != nil {
				t.Fatal(err)
			}
		}
		now += 100 * time.Millisecond
	}
	st := e.Stats()
	// All R redirectors share the identical vector every window: one miss in
	// window 1, hits everywhere else.
	if st.CacheMisses() != 1 {
		t.Fatalf("misses = %d, want 1 (%v)", st.CacheMisses(), st)
	}
	if want := int64(R*windows - 1); st.CacheHits() != want {
		t.Fatalf("hits = %d, want %d (%v)", st.CacheHits(), want, st)
	}
	if st.Solves() != 1 {
		t.Fatalf("solves = %d, want 1", st.Solves())
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	e, err := NewEngine(Config{
		Mode:             Community,
		System:           s,
		NumRedirectors:   2,
		PlanCacheQuantum: -1, // disable
	})
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := e.NewRedirector(0), e.NewRedirector(1)
	for _, r := range []*Redirector{r1, r2} {
		r.SetGlobal([]float64{80, 40}, 0)
		if err := r.StartWindow(0); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().CacheHits() != 0 || e.Stats().CacheMisses() != 0 {
		t.Fatalf("disabled cache recorded lookups: %v", e.Stats())
	}
}

// TestCacheInvalidatedOnRebuild guards the staleness hazard: plans computed
// under old entitlements must never be served after UpdateCapacities or
// UpdateSystem rebuild the schedulers.
func TestCacheInvalidatedOnRebuild(t *testing.T) {
	e, a, bPr := communityEngine(t, 1)
	r := e.NewRedirector(0)
	// Local demand so the redirector claims a share of the plan.
	for i := 0; i < 80; i++ {
		r.Admit(a)
	}
	global := []float64{80, 40}
	r.SetGlobal(global, 0)
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	before := r.CreditsRemaining(a)
	if before <= 0 {
		t.Fatalf("no credits before rebuild (%g)", before)
	}

	// Halve every capacity; the same queue vector must now yield a plan from
	// the rebuilt scheduler, not the cached pre-rebuild plan.
	caps := make([]float64, e.NumPrincipals())
	caps[a], caps[bPr] = 160, 160
	if _, err := e.UpdateCapacities(caps); err != nil {
		t.Fatal(err)
	}
	r.SetGlobal(global, 0)
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	after := r.CreditsRemaining(a)
	if math.Abs(after-before) < 1e-9 {
		t.Fatalf("credits unchanged (%g) after halving capacity — stale cached plan served", after)
	}
	if e.Stats().Solves() != 2 {
		t.Fatalf("solves = %d, want 2 (one per cache generation)", e.Stats().Solves())
	}
}

func TestProviderPlanCacheShared(t *testing.T) {
	e, a, b := providerEngine(t, 2)
	r1, r2 := e.NewRedirector(0), e.NewRedirector(1)
	global := make([]float64, e.NumPrincipals())
	global[a] = 60
	global[b] = 30
	for w := 0; w < 5; w++ {
		now := time.Duration(w) * 100 * time.Millisecond
		for _, r := range []*Redirector{r1, r2} {
			r.SetGlobal(global, now)
			if err := r.StartWindow(now); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := e.Stats()
	if st.Solves() != 1 || st.CacheMisses() != 1 {
		t.Fatalf("solves/misses = %d/%d, want 1/1", st.Solves(), st.CacheMisses())
	}
	if st.CacheHits() != 9 {
		t.Fatalf("hits = %d, want 9", st.CacheHits())
	}
}

// TestLocalEstimateInto covers the allocation-free estimate accessor.
func TestLocalEstimateInto(t *testing.T) {
	e, a, _ := communityEngine(t, 1)
	r := e.NewRedirector(0)
	r.Admit(a)
	r.SetGlobal([]float64{10, 10}, 0)
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	want := r.LocalEstimate()
	buf := make([]float64, 0, 8)
	got := r.LocalEstimateInto(buf)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("LocalEstimateInto did not reuse the provided buffer")
	}
	if small := r.LocalEstimateInto(make([]float64, 1)); len(small) != len(want) {
		t.Fatalf("undersized dst: len = %d, want %d", len(small), len(want))
	}
}
