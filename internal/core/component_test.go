package core

import (
	"testing"
	"time"

	"repro/internal/agreement"
)

// fourPrincipalEngine builds two disjoint agreement components — {A,B} and
// {C,D}, each a mutual 0.5 pair like the standard community fixture — with
// a staleness budget so component aggregates can age out independently.
func fourPrincipalEngine(t *testing.T) *Engine {
	t.Helper()
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	c := s.MustAddPrincipal("C", 320)
	d := s.MustAddPrincipal("D", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	s.MustSetAgreement(d, c, 0.5, 0.5)
	e, err := NewEngine(Config{
		Mode:           Community,
		System:         s,
		Window:         100 * time.Millisecond,
		NumRedirectors: 2,
		Staleness:      150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if comps := s.Components(); len(comps) != 2 {
		t.Fatalf("components = %v, want two", comps)
	}
	return e
}

// TestMixedComponentWindowGating: when one component's aggregate is fresh
// and the other's is stale, the window plans the fresh component normally
// and claims only the conservative share for the stale one — and counts as
// a partial window, not a conservative one.
func TestMixedComponentWindowGating(t *testing.T) {
	e := fourPrincipalEngine(t)
	r := e.NewRedirector(0)
	const (
		a = agreement.Principal(0)
		c = agreement.Principal(2)
	)

	// {A,B} aggregate is 50ms old at window start; {C,D} is 200ms old —
	// past the 150ms staleness budget.
	r.SetGlobalComponent([]int{0, 1}, []float64{40, 40}, 250*time.Millisecond)
	r.SetGlobalComponent([]int{2, 3}, []float64{40, 40}, 100*time.Millisecond)
	if err := r.StartWindow(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if r.Conservative != 0 || r.Partial != 1 {
		t.Fatalf("Conservative=%d Partial=%d, want 0/1", r.Conservative, r.Partial)
	}
	// C runs conservatively: half of its mandatory entitlements (own 32 +
	// partner 16 per window ⇒ 24), exactly like a fully blind window.
	admitted := 0
	for i := 0; i < 100; i++ {
		if r.Admit(c).Admitted {
			admitted++
		}
	}
	if admitted != 24 {
		t.Fatalf("stale-component admissions for C = %d, want 24", admitted)
	}
	// A was planned against its fresh aggregate with zero local estimate:
	// the plan grants it nothing here (frac 0), so admissions stay 0 —
	// the point is it took the planned path, not the blind share.
	if d := r.Admit(a); d.Admitted {
		t.Fatal("fresh principal drew blind-share credit")
	}

	// Both components fresh: a normal planned window, no new partials.
	r.SetGlobalComponent([]int{2, 3}, []float64{40, 40}, 350*time.Millisecond)
	if err := r.StartWindow(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if r.Conservative != 0 || r.Partial != 1 {
		t.Fatalf("after fresh window: Conservative=%d Partial=%d, want 0/1", r.Conservative, r.Partial)
	}

	// Both stale: collapses into the ordinary conservative fallback.
	if err := r.StartWindow(1200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if r.Conservative != 1 || r.Partial != 1 {
		t.Fatalf("after stale window: Conservative=%d Partial=%d, want 1/1", r.Conservative, r.Partial)
	}
}

// TestSetGlobalKeepsUniformSemantics: the flat single-tree path stamps
// every principal at once, so the per-principal mask never reports a mixed
// window and behavior matches the pre-sharding engine exactly.
func TestSetGlobalKeepsUniformSemantics(t *testing.T) {
	e := fourPrincipalEngine(t)
	r := e.NewRedirector(0)
	r.SetGlobal([]float64{40, 40, 40, 40}, 100*time.Millisecond)
	if err := r.StartWindow(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if r.Conservative != 0 || r.Partial != 0 {
		t.Fatalf("uniform fresh: Conservative=%d Partial=%d", r.Conservative, r.Partial)
	}
	if err := r.StartWindow(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r.Conservative != 1 || r.Partial != 0 {
		t.Fatalf("uniform stale: Conservative=%d Partial=%d", r.Conservative, r.Partial)
	}
}
