package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/agreement"
)

// communityEngine builds the Figure 9 community: A and B each own a
// 320 req/s server, B shares [0.5, 0.5] with A.
func communityEngine(t testing.TB, redirectors int) (*Engine, agreement.Principal, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	e, err := NewEngine(Config{
		Mode:           Community,
		System:         s,
		Window:         100 * time.Millisecond,
		NumRedirectors: redirectors,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, a, b
}

// providerEngine builds the Figure 10 provider: 640 req/s, A [0.8,1] at
// price 2, B [0.2,1] at price 1.
func providerEngine(t testing.TB, redirectors int) (*Engine, agreement.Principal, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 640)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.8, 1)
	s.MustSetAgreement(sp, b, 0.2, 1)
	e, err := NewEngine(Config{
		Mode:              Provider,
		System:            s,
		Window:            100 * time.Millisecond,
		NumRedirectors:    redirectors,
		ProviderPrincipal: sp,
		Prices:            map[agreement.Principal]float64{a: 2, b: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, a, b
}

// pump runs w windows feeding constant per-window demand and a matching
// global view, returning admissions per principal in the final window.
func pump(t *testing.T, r *Redirector, demand []float64, w int) []float64 {
	t.Helper()
	n := len(demand)
	admitted := make([]float64, n)
	now := time.Duration(0)
	for win := 0; win < w; win++ {
		r.SetGlobal(demand, now)
		if err := r.StartWindow(now); err != nil {
			t.Fatal(err)
		}
		for i := range admitted {
			admitted[i] = 0
		}
		for i := 0; i < n; i++ {
			for q := 0.0; q < demand[i]; q++ {
				if d := r.Admit(agreement.Principal(i)); d.Admitted {
					admitted[i]++
				}
			}
		}
		now += 100 * time.Millisecond
	}
	return admitted
}

func TestEngineDefaults(t *testing.T) {
	s := agreement.New()
	s.MustAddPrincipal("A", 100)
	e, err := NewEngine(Config{Mode: Community, System: s})
	if err != nil {
		t.Fatal(err)
	}
	if e.Window() != 100*time.Millisecond {
		t.Fatalf("default window = %v", e.Window())
	}
	if e.Mode() != Community || e.Mode().String() != "community" {
		t.Fatal("mode wrong")
	}
	if e.NumPrincipals() != 1 {
		t.Fatal("principal count wrong")
	}
}

func TestEngineConfigErrors(t *testing.T) {
	if _, err := NewEngine(Config{Mode: Community}); err == nil {
		t.Error("nil system accepted")
	}
	s := agreement.New()
	s.MustAddPrincipal("A", 100)
	if _, err := NewEngine(Config{Mode: Mode(9), System: s}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := NewEngine(Config{Mode: Provider, System: s, ProviderPrincipal: 5}); err == nil {
		t.Error("out-of-range provider accepted")
	}
	if _, err := NewEngine(Config{Mode: Community, System: s, LocalityCaps: []float64{1, 2}}); err == nil {
		t.Error("bad locality caps accepted")
	}
}

func TestAccessScaledToWindow(t *testing.T) {
	e, a, b := communityEngine(t, 1)
	// MC_A = 480 req/s ⇒ 48 per 100 ms window.
	if math.Abs(e.Access().MC[a]-48) > 1e-9 {
		t.Fatalf("MC[A]/window = %g, want 48", e.Access().MC[a])
	}
	if math.Abs(e.Access().MC[b]-16) > 1e-9 {
		t.Fatalf("MC[B]/window = %g, want 16", e.Access().MC[b])
	}
}

func TestCommunitySingleRedirectorSteadyState(t *testing.T) {
	e, a, b := communityEngine(t, 1)
	r := e.NewRedirector(0)
	// Demand per window: A 80 (two clients), B 40 — Figure 9 phase 1.
	admitted := pump(t, r, []float64{80, 40}, 20)
	// Steady state: A 48/window (480/s), B 16/window (160/s).
	if math.Abs(admitted[a]-48) > 1.5 || math.Abs(admitted[b]-16) > 1.5 {
		t.Fatalf("admitted = %v, want ≈[48 16]", admitted)
	}
}

func TestCommunityAdmitTargetsOwners(t *testing.T) {
	e, a, _ := communityEngine(t, 1)
	r := e.NewRedirector(0)
	pump(t, r, []float64{80, 40}, 10)
	r.SetGlobal([]float64{80, 40}, 0)
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	owners := make(map[agreement.Principal]int)
	for i := 0; i < 80; i++ {
		if d := r.Admit(a); d.Admitted {
			owners[d.Owner]++
		}
	}
	// A's 48 credits split 32 on its own server, 16 on B's.
	if owners[0] < 30 || owners[1] < 14 {
		t.Fatalf("owner split = %v, want ≈{A:32 B:16}", owners)
	}
}

func TestProviderSteadyState(t *testing.T) {
	e, a, b := providerEngine(t, 1)
	r := e.NewRedirector(0)
	// Figure 10 phase 1: A 80/window, B 40/window.
	admitted := pump(t, r, []float64{0, 80, 40}, 20)
	// A 51.2/window (512/s), B 12.8/window (128/s).
	if math.Abs(admitted[a]-51) > 2 || math.Abs(admitted[b]-13) > 2 {
		t.Fatalf("admitted = %v, want ≈[_ 51 13]", admitted)
	}
	if len(e.Customers()) != 2 {
		t.Fatalf("customers = %v", e.Customers())
	}
}

func TestProviderDecisionOwnerIsProvider(t *testing.T) {
	e, a, _ := providerEngine(t, 1)
	r := e.NewRedirector(0)
	pump(t, r, []float64{0, 10, 0}, 5)
	r.SetGlobal([]float64{0, 10, 0}, 0)
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	d := r.Admit(a)
	if !d.Admitted || d.Owner != 0 {
		t.Fatalf("decision = %+v, want admitted by provider 0", d)
	}
}

func TestConservativeFallbackHalvesMandatory(t *testing.T) {
	e, a, b := providerEngine(t, 2)
	r := e.NewRedirector(0)
	// No SetGlobal at all: conservative mode. B's mandatory is 128 req/s =
	// 12.8/window; half (two redirectors) = 6.4.
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := 0; i < 100; i++ {
		if r.Admit(b).Admitted {
			count++
		}
	}
	if count != 6 {
		t.Fatalf("conservative admissions for B = %d, want 6 (half of 12.8)", count)
	}
	if r.Conservative != 1 {
		t.Fatalf("Conservative windows = %d", r.Conservative)
	}
	_ = a
}

func TestCommunityConservativeFallback(t *testing.T) {
	e, a, b := communityEngine(t, 2)
	r := e.NewRedirector(0)
	if r.HasGlobal() {
		t.Fatal("fresh redirector claims a global view")
	}
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	// Blind community mode: half of each per-pair mandatory entitlement.
	// A: MI[A][A]=32, MI[B][A]=16 per window ⇒ half = 16 + 8 = 24.
	admitted, owners := 0, map[agreement.Principal]int{}
	for i := 0; i < 100; i++ {
		if d := r.Admit(a); d.Admitted {
			admitted++
			owners[d.Owner]++
		}
	}
	if admitted != 24 {
		t.Fatalf("blind community admissions = %d, want 24", admitted)
	}
	if owners[a] != 16 || owners[b] != 8 {
		t.Fatalf("owner split = %v, want A:16 B:8", owners)
	}
	r.SetGlobal([]float64{10, 10}, 0)
	if !r.HasGlobal() {
		t.Fatal("HasGlobal false after SetGlobal")
	}
}

func TestStalenessTriggersConservative(t *testing.T) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 320)
	a := s.MustAddPrincipal("A", 0)
	s.MustSetAgreement(sp, a, 0.5, 1)
	e, err := NewEngine(Config{
		Mode: Provider, System: s, ProviderPrincipal: sp,
		NumRedirectors: 1, Staleness: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := e.NewRedirector(0)
	r.SetGlobal([]float64{0, 50}, 0)
	if err := r.StartWindow(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if r.Conservative != 0 {
		t.Fatal("fresh global counted as stale")
	}
	if err := r.StartWindow(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r.Conservative != 1 {
		t.Fatal("stale global did not trigger conservative mode")
	}
}

func TestCreditCarryover(t *testing.T) {
	// Provider with a tiny mandatory rate: 5 req/s = 0.5 per window. With
	// carry-over, conservative mode admits ~1 request every 2 windows.
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 5)
	a := s.MustAddPrincipal("A", 0)
	s.MustSetAgreement(sp, a, 1, 1)
	e, err := NewEngine(Config{Mode: Provider, System: s, ProviderPrincipal: sp, NumRedirectors: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := e.NewRedirector(0)
	admitted := 0
	for w := 0; w < 20; w++ {
		if err := r.StartWindow(time.Duration(w) * 100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if r.Admit(a).Admitted {
			admitted++
		}
	}
	if admitted < 9 || admitted > 10 {
		t.Fatalf("admitted %d over 20 windows at 0.5/window, want ≈10", admitted)
	}
}

func TestDescribeEntitlements(t *testing.T) {
	e, _, _ := communityEngine(t, 1)
	out := e.DescribeEntitlements()
	if !strings.Contains(out, "community mode") ||
		!strings.Contains(out, "A") || !strings.Contains(out, "480.0") {
		t.Fatalf("DescribeEntitlements = %q", out)
	}
}

func TestAdmitUnknownPrincipal(t *testing.T) {
	e, _, _ := communityEngine(t, 1)
	r := e.NewRedirector(0)
	if d := r.Admit(agreement.Principal(-1)); d.Admitted {
		t.Fatal("admitted invalid principal")
	}
	if d := r.Admit(agreement.Principal(99)); d.Admitted {
		t.Fatal("admitted out-of-range principal")
	}
	if r.CreditsRemaining(agreement.Principal(99)) != 0 {
		t.Fatal("credits for out-of-range principal")
	}
}

func TestTwoRedirectorsSplitByLocalDemand(t *testing.T) {
	// Two redirectors; all of A's demand arrives at r0, all of B's at r1.
	// With global aggregates both enforce the same totals as a single node.
	e, a, b := communityEngine(t, 2)
	r0 := e.NewRedirector(0)
	r1 := e.NewRedirector(1)
	now := time.Duration(0)
	var adA, adB float64
	for w := 0; w < 20; w++ {
		// The global view is the sum of both locals (ideal, no lag).
		g := make([]float64, 2)
		for i, v := range r0.LocalEstimate() {
			g[i] += v
		}
		for i, v := range r1.LocalEstimate() {
			g[i] += v
		}
		r0.SetGlobal(g, now)
		r1.SetGlobal(g, now)
		if err := r0.StartWindow(now); err != nil {
			t.Fatal(err)
		}
		if err := r1.StartWindow(now); err != nil {
			t.Fatal(err)
		}
		adA, adB = 0, 0
		for i := 0; i < 80; i++ {
			if r0.Admit(a).Admitted {
				adA++
			}
		}
		for i := 0; i < 40; i++ {
			if r1.Admit(b).Admitted {
				adB++
			}
		}
		now += 100 * time.Millisecond
	}
	if math.Abs(adA-48) > 2 || math.Abs(adB-16) > 2 {
		t.Fatalf("split admissions = %g/%g, want ≈48/16", adA, adB)
	}
	if r0.ID() != 0 || r1.ID() != 1 {
		t.Fatal("IDs wrong")
	}
}

func TestLocalityCapLimitsPush(t *testing.T) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	// This redirector may push at most 100 req/s (10/window) to B's server.
	e, err := NewEngine(Config{
		Mode: Community, System: s, NumRedirectors: 1,
		LocalityCaps: []float64{math.Inf(1), 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := e.NewRedirector(0)
	now := time.Duration(0)
	var toB float64
	for w := 0; w < 15; w++ {
		r.SetGlobal([]float64{80, 0}, now)
		if err := r.StartWindow(now); err != nil {
			t.Fatal(err)
		}
		toB = 0
		for i := 0; i < 80; i++ {
			if d := r.Admit(a); d.Admitted && d.Owner == b {
				toB++
			}
		}
		now += 100 * time.Millisecond
	}
	if toB > 11 {
		t.Fatalf("pushed %g/window to B, cap is 10", toB)
	}
}

func TestAdmitPreferringAffinity(t *testing.T) {
	e, a, b := communityEngine(t, 1)
	r := e.NewRedirector(0)
	pump(t, r, []float64{80, 40}, 10)
	r.SetGlobal([]float64{80, 40}, 0)
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	// A has credits on both owners; preferring B must stick to B while B's
	// credit lasts (≈16/window), then fall back to A's own server.
	sawB, sawA := 0, 0
	for i := 0; i < 48; i++ {
		d := r.AdmitPreferring(a, b)
		if !d.Admitted {
			break
		}
		if d.Owner == b {
			sawB++
		} else {
			sawA++
		}
	}
	if sawB < 14 || sawA == 0 {
		t.Fatalf("affinity split = B:%d A:%d, want ≈16 on B then fallback", sawB, sawA)
	}
	// Preference out of range behaves like plain Admit.
	if d := r.AdmitPreferring(a, agreement.Principal(99)); !d.Admitted && r.CreditsRemaining(a) >= 1 {
		t.Fatal("out-of-range preference broke admission")
	}
}

func TestAdmitCostChargesCredits(t *testing.T) {
	e, a, _ := communityEngine(t, 1)
	r := e.NewRedirector(0)
	pump(t, r, []float64{80, 0}, 10)
	r.SetGlobal([]float64{80, 0}, 0)
	if err := r.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	// A has ≈48 credits; cost-8 requests fit 6 times.
	admitted := 0
	for i := 0; i < 20; i++ {
		if d := r.AdmitCost(a, -1, 8); d.Admitted {
			admitted++
		}
	}
	if admitted != 6 {
		t.Fatalf("cost-8 admissions = %d, want 6 (48 credits)", admitted)
	}
	// Non-positive cost behaves like cost 1.
	if d := r.AdmitCost(a, -1, 0); d.Admitted && r.CreditsRemaining(a) < 0 {
		t.Fatal("zero cost corrupted credits")
	}
}

func TestUpdateCapacitiesRescalesEntitlements(t *testing.T) {
	e, a, b := communityEngine(t, 1)
	if got := e.Access().MC[a]; math.Abs(got-48) > 1e-9 {
		t.Fatalf("initial MC[A]/window = %v", got)
	}
	// B's server degrades to half capacity: A's entitlement drops from
	// 480 to 320+80 = 400 req/s (40/window) without re-enumerating paths.
	if _, err := e.UpdateCapacities([]float64{320, 160}); err != nil {
		t.Fatal(err)
	}
	if got := e.Access().MC[a]; math.Abs(got-40) > 1e-9 {
		t.Fatalf("MC[A]/window after degrade = %v, want 40", got)
	}
	if got := e.Access().MC[b]; math.Abs(got-8) > 1e-9 {
		t.Fatalf("MC[B]/window after degrade = %v, want 8", got)
	}
	// Running redirectors pick the new entitlements up next window.
	r := e.NewRedirector(0)
	admitted := pump(t, r, []float64{80, 40}, 15)
	if math.Abs(admitted[a]-40) > 2 || math.Abs(admitted[b]-8) > 2 {
		t.Fatalf("post-update admissions = %v, want ≈[40 8]", admitted)
	}
	if _, err := e.UpdateCapacities([]float64{1}); err == nil {
		t.Fatal("short capacity vector accepted")
	}
	if _, err := e.UpdateCapacities([]float64{-1, 5}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestUpdateSystemRefoldsAgreements(t *testing.T) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	e, err := NewEngine(Config{Mode: Community, System: s, NumRedirectors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Access().MC[a]; math.Abs(got-48) > 1e-9 {
		t.Fatalf("MC[A] = %v", got)
	}
	// The agreement is renegotiated: B now grants only 25%.
	s.MustSetAgreement(b, a, 0.25, 0.25)
	if _, err := e.UpdateSystem(); err != nil {
		t.Fatal(err)
	}
	if got := e.Access().MC[a]; math.Abs(got-40) > 1e-9 {
		t.Fatalf("MC[A] after renegotiation = %v, want 40", got)
	}
}

func TestRejectionsCounted(t *testing.T) {
	e, a, _ := communityEngine(t, 1)
	r := e.NewRedirector(0)
	// No windows started: no credits at all.
	if d := r.Admit(a); d.Admitted {
		t.Fatal("admitted without credits")
	}
	if r.Rejected != 1 || r.Admitted != 0 {
		t.Fatalf("counters = admitted %d rejected %d", r.Admitted, r.Rejected)
	}
}

func BenchmarkAdmit(b *testing.B) {
	e, a, _ := communityEngine(b, 1)
	r := e.NewRedirector(0)
	r.SetGlobal([]float64{1e9, 0}, 0)
	for i := 0; i < 1000; i++ {
		r.Admit(a)
	}
	if err := r.StartWindow(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Admit(a)
	}
}

func BenchmarkStartWindow(b *testing.B) {
	e, a, _ := communityEngine(b, 2)
	r := e.NewRedirector(0)
	for i := 0; i < 100; i++ {
		r.Admit(a)
	}
	r.SetGlobal([]float64{80, 40}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.StartWindow(time.Duration(i) * 100 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

func TestObserverRecordsWindows(t *testing.T) {
	e, a, b := communityEngine(t, 1)
	r := e.NewRedirector(0)
	o := e.NewObserver(0, nil, 0)
	r.SetObserver(o)
	if r.Observer() != o {
		t.Fatal("Observer accessor did not return the installed observer")
	}

	const windows = 10
	demand := []float64{80, 40}
	pump(t, r, demand, windows)

	// A window's record commits when the next window opens, so after w
	// StartWindow calls w-1 records are in the ring.
	recs := o.Ring().Snapshot(0)
	if len(recs) != windows-1 {
		t.Fatalf("ring holds %d records, want %d", len(recs), windows-1)
	}
	for i, rec := range recs {
		if rec.Window != uint64(i+1) {
			t.Fatalf("record %d has window %d", i, rec.Window)
		}
		if rec.Redirector != 0 {
			t.Fatalf("record %d labeled redirector %d", i, rec.Redirector)
		}
		if !rec.HaveGlobal || rec.Conservative || rec.SolveErr {
			t.Fatalf("record %d flags = global=%v conservative=%v solveErr=%v",
				i, rec.HaveGlobal, rec.Conservative, rec.SolveErr)
		}
		if rec.Arrived[a] != demand[a] || rec.Arrived[b] != demand[b] {
			t.Fatalf("record %d arrivals = %v, want %v", i, rec.Arrived, demand)
		}
		if rec.Global[a] != demand[a] || rec.Global[b] != demand[b] {
			t.Fatalf("record %d global = %v", i, rec.Global)
		}
		for p := range demand {
			if rec.Served[p] < 0 || rec.Served[p] > rec.Arrived[p] {
				t.Fatalf("record %d served[%d] = %g outside [0, %g]",
					i, p, rec.Served[p], rec.Arrived[p])
			}
			if rec.Ceil[p]+1e-9 < rec.Floor[p] {
				t.Fatalf("record %d principal %d ceil %g < floor %g",
					i, p, rec.Ceil[p], rec.Floor[p])
			}
		}
	}
	// Steady state (single redirector, frac→1): A floor/ceil at its
	// MC=48/window, B at 16.
	last := recs[len(recs)-1]
	if math.Abs(last.Floor[a]-48) > 2 || math.Abs(last.Floor[b]-16) > 2 {
		t.Fatalf("steady-state floors = %v, want ≈[48 16]", last.Floor)
	}
	if last.SolveNanos <= 0 && !last.CacheHit {
		t.Fatalf("record has neither solve latency nor a cache hit")
	}

	aud := o.Auditor()
	if aud.Windows() != int64(windows-1) {
		t.Fatalf("auditor windows = %d, want %d", aud.Windows(), windows-1)
	}
	if aud.Conservative() != 0 || aud.NoGlobal() != 0 || aud.SolveErrors() != 0 {
		t.Fatalf("auditor flags = conservative=%d noGlobal=%d solveErr=%d",
			aud.Conservative(), aud.NoGlobal(), aud.SolveErrors())
	}
	if got := aud.OverUB(int(a)) + aud.OverUB(int(b)); got != 0 {
		t.Fatalf("auditor counted %d over-ceiling windows", got)
	}
	if aud.Arrived(int(a)) != float64(windows-1)*demand[a] {
		t.Fatalf("auditor arrived[A] = %g", aud.Arrived(int(a)))
	}
	if aud.Served(int(a)) <= 0 {
		t.Fatal("auditor served[A] not accumulated")
	}
	names := aud.Names()
	if len(names) != 2 || names[a] != "A" || names[b] != "B" {
		t.Fatalf("auditor names = %v", names)
	}
}

func TestObserverTracesConservativeWindows(t *testing.T) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 320)
	a := s.MustAddPrincipal("A", 0)
	s.MustSetAgreement(sp, a, 0.5, 1)
	e, err := NewEngine(Config{
		Mode: Provider, System: s, ProviderPrincipal: sp,
		NumRedirectors: 1, Staleness: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := e.NewRedirector(0)
	o := e.NewObserver(0, nil, 0)
	r.SetObserver(o)
	r.SetGlobal([]float64{0, 50}, 0)
	for _, now := range []time.Duration{500 * time.Millisecond, 5 * time.Second, 5100 * time.Millisecond} {
		if err := r.StartWindow(now); err != nil {
			t.Fatal(err)
		}
	}
	recs := o.Ring().Snapshot(0)
	if len(recs) != 2 {
		t.Fatalf("ring holds %d records, want 2", len(recs))
	}
	fresh, stale := recs[0], recs[1]
	if fresh.Conservative || !fresh.HaveGlobal {
		t.Fatalf("fresh window flagged conservative=%v global=%v", fresh.Conservative, fresh.HaveGlobal)
	}
	if !stale.Conservative {
		t.Fatal("stale window not flagged conservative")
	}
	if stale.GlobalAgeNanos <= int64(time.Second) {
		t.Fatalf("stale record global age = %dns, want > 1s", stale.GlobalAgeNanos)
	}
	// Blind fallback grants the 1/R mandatory share: MC_A = 16/window here.
	if math.Abs(stale.Granted[a]-16) > 1e-6 || math.Abs(stale.Floor[a]-16) > 1e-6 {
		t.Fatalf("conservative grant = %g floor = %g, want 16", stale.Granted[a], stale.Floor[a])
	}
	if o.Auditor().Conservative() != 1 {
		t.Fatalf("auditor conservative = %d, want 1", o.Auditor().Conservative())
	}
}
