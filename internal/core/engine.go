// Package core implements the paper's agreement-enforcement engine: the
// piece each redirector runs to decide, window by window, which incoming
// requests to forward to which servers so that the aggregate system honors
// the resource sharing agreements.
//
// An Engine captures the static side — the agreement graph folded into
// entitlements (internal/agreement) and the scheduling model
// (internal/sched) — and stamps out one Redirector per admission point.
// Each Redirector implements the credit scheme of §4.1 (implicit queuing):
// at every window boundary it solves the LP on *global* queue estimates,
// scales the plan to its local share (§3.2), and converts the result into
// per-principal credits that admit or self-redirect individual requests
// with O(1) work per request.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agreement"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Mode selects the optimization context of §3.1.2.
type Mode int

const (
	// Community minimizes the maximum response time across participants
	// (max–min served fraction).
	Community Mode = iota
	// Provider maximizes a service provider's income.
	Provider
)

// String names the mode.
func (m Mode) String() string {
	if m == Community {
		return "community"
	}
	return "provider"
}

// ErrConfig reports invalid engine configuration.
var ErrConfig = errors.New("core: invalid config")

// Config parameterizes an Engine.
type Config struct {
	Mode   Mode
	System *agreement.System
	// Window is the scheduling time window; the paper uses 100 ms.
	Window time.Duration
	// NumRedirectors is how many admission points share enforcement; a
	// redirector lacking global information conservatively claims only
	// 1/NumRedirectors of each mandatory entitlement (§5.1, Figure 8).
	NumRedirectors int
	// Staleness bounds how old global queue information may be before a
	// redirector falls back to conservative mode; 0 means never (the paper
	// tolerates arbitrarily lagged estimates once received).
	Staleness time.Duration
	// EWMAAlpha smooths the per-window arrival estimator (0 < α ≤ 1);
	// the default 0.7 favors responsiveness to phase changes.
	EWMAAlpha float64

	// ProviderPrincipal is the owner of the servers in Provider mode.
	ProviderPrincipal agreement.Principal
	// Prices maps customers to the per-request price beyond their
	// mandatory level (Provider mode); missing customers default to 1.
	Prices map[agreement.Principal]float64

	// LocalityCaps optionally bounds, per owner, the requests one
	// redirector may push per window (Community mode, §3.1.2 extension).
	LocalityCaps []float64

	// AggressiveWhenBlind makes a redirector without global information
	// claim each principal's FULL mandatory entitlement instead of the
	// 1/NumRedirectors share. Exists for the ablation that shows why the
	// paper's conservative rule matters: with a principal's demand split
	// across blind redirectors, aggressive claiming admits multiples of
	// the mandatory rate and overloads servers. Never enable in production.
	AggressiveWhenBlind bool

	// MultiResource switches Community mode to the multi-dimensional
	// scheduler of §3.1.1 ("in case of multiple resource types, above
	// quantities should be represented as vectors"). When set, the
	// System's scalar capacities are ignored: flows are capacity
	// independent, and entitlements come from these vectors instead.
	MultiResource *MultiResourceConfig

	// PlanCacheQuantum is the queue-quantization step (requests/window) of
	// the shared per-window plan cache: redirectors whose global queue
	// vectors agree to within half a quantum per principal share one LP
	// solve. Zero selects sched.DefaultQuantum (1e-6); a negative value
	// disables the cache entirely (every StartWindow solves).
	PlanCacheQuantum float64
	// PlanCacheLimit bounds the number of distinct quantized vectors kept
	// before the cache resets; zero selects sched.DefaultCacheLimit.
	PlanCacheLimit int

	// RolloutGraceEpochs is the rollout liveness valve: when a staged set
	// is still unpromoted this many epochs past its gate, any registered
	// redirector that has not crossed is presumed dead and evicted from
	// the promotion quorum, letting the survivors commit. Dead processes
	// schedule no windows and a live laggard runs the conservative claim
	// (it lacks the new set), so promoting cannot create mixed-version
	// enforcement. Zero disables the valve; eviction then happens only via
	// explicit EvictRedirector calls from failure detection.
	RolloutGraceEpochs int

	// Logger receives enforcement-degradation events (floor fallbacks,
	// conservative windows) from the engine and its schedulers. Nil falls
	// back to the process-wide obs.Default logger.
	Logger *obs.Logger
}

// MultiResourceConfig declares vector capacities and per-request costs.
type MultiResourceConfig struct {
	// Capacities[d][p] is principal p's capacity in dimension d, in
	// units/second (for example requests/s and KB/s).
	Capacities [][]float64
	// Costs[p][d] is how many units of dimension d one request of
	// principal p consumes.
	Costs [][]float64
}

// Version numbers the engine's immutable scheduling generations. Every
// accepted mutation — capacity re-interpretation, agreement renegotiation, a
// control-plane set rollout — produces the next Version; a window is
// scheduled entirely against one generation, never a mix.
type Version uint64

// Engine holds the precomputed enforcement state shared by redirectors.
// Entitlements fold the agreement graph once; capacity changes re-scale
// them cheaply via UpdateCapacities (the paper's dynamic interpretation of
// agreements, §2.2). The mutex makes scheduler swaps safe against
// concurrently running redirector windows in the socket front-ends.
//
// # Mutator contract
//
// UpdateCapacities, UpdateMultiResource, UpdateSystem, SetAgreement, and
// StageSet share one locked rebuild path: each validates its input, derives
// a complete new generation (entitlements, scheduler, plan caches) under
// e.mu, and either commits it atomically or rolls the configuration back,
// returning the Version now active. They are safe to call concurrently with
// each other and with running redirector windows: a window that raced the
// mutation finishes on the generation it snapshotted, and the next
// StartWindow picks up the new one. Plan caches are created fresh exactly
// once per generation, so a plan computed against old entitlements can never
// satisfy a lookup after the swap.
type Engine struct {
	cfg     Config
	n       int
	windowS float64
	flows   *agreement.Flows
	stats   *metrics.SolverStats // shared fast-path telemetry (never nil)

	mu  sync.RWMutex
	cur schedState // active generation (version == e.version)
	// staged, when non-nil, is the next generation waiting behind the epoch
	// gate of a control-plane rollout (see StageSet/stateFor).
	staged    *stagedGen
	version   Version // active generation number
	lastBuilt Version // monotonic generation counter (staged included)
	lastSet   uint64  // newest agreement.Set version accepted
	// registered tracks the admission-point ids sharing this engine;
	// evicted marks the subset removed from the promotion quorum by
	// failure detection (or the grace valve). Registration is idempotent
	// per id, so a restarted redirector re-registering under its old
	// identity does not inflate the quorum — and re-registration clears
	// its eviction, re-admitting it through the laggard conservative path.
	registered map[int]bool
	evicted    map[int]bool
	rollouts   uint64 // epoch-gated rollouts completed

	// rolloutGate is 0 whenever no rollout is in flight — the steady-state
	// fast path: stateFor does one atomic load and falls through to the
	// plain RLock snapshot, keeping the window hot path unchanged.
	rolloutGate atomic.Int64

	// leases holds the immutable per-window lease-credit snapshot (nil when
	// no lease is active). A lease reserves capacity out of the agreement
	// fold — the control plane lowers the owner's effective capacity through
	// the versioned-set path — and this is the other half: the dedicated
	// credit the holder draws each window, deposited by StartWindow on top
	// of the LP plan. Kept outside schedState so lease-credit updates never
	// rebuild a scheduling generation on their own.
	leases atomic.Pointer[leaseCredits]
}

// leaseCredits is one immutable lease-credit snapshot, in requests/window.
// matrix[holder][owner] feeds Community credits; total[holder] feeds
// Provider credits.
type leaseCredits struct {
	matrix [][]float64
	total  []float64
}

// stagedGen is a generation staged behind an epoch gate: redirectors swap to
// state individually once their tree epoch reaches gateEpoch and they have
// acknowledged the set version; the generation is promoted to cur when every
// registered redirector has crossed.
type stagedGen struct {
	state      schedState
	setVersion uint64
	gateEpoch  int
	crossed    map[int]bool
}

// RolloutInfo is a snapshot of the engine's version state for the admin API
// and /metrics.
type RolloutInfo struct {
	// Active is the generation windows currently schedule against; Staged
	// is the generation waiting behind the epoch gate (0 when none).
	Active Version `json:"active"`
	Staged Version `json:"staged,omitempty"`
	// SetVersion is the newest agreement-set version accepted; GateEpoch the
	// tree epoch the staged generation is gated on.
	SetVersion uint64 `json:"set_version"`
	GateEpoch  int    `json:"gate_epoch,omitempty"`
	// Crossed counts redirectors that have swapped to the staged generation,
	// out of Redirectors registered; Evicted counts those removed from the
	// promotion quorum by failure detection or the grace valve.
	Crossed     int `json:"crossed"`
	Redirectors int `json:"redirectors"`
	Evicted     int `json:"evicted,omitempty"`
	// Rollouts counts epoch-gated rollouts fully converged since start.
	Rollouts uint64 `json:"rollouts"`
}

// NewEngine validates cfg, folds the agreement graph, and builds the window
// scheduler.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.System == nil || cfg.System.NumPrincipals() == 0 {
		return nil, fmt.Errorf("%w: nil or empty system", ErrConfig)
	}
	if cfg.Window <= 0 {
		cfg.Window = 100 * time.Millisecond
	}
	if cfg.NumRedirectors <= 0 {
		cfg.NumRedirectors = 1
	}
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		cfg.EWMAAlpha = 0.7
	}
	n := cfg.System.NumPrincipals()
	if cfg.Mode != Community && cfg.Mode != Provider {
		return nil, fmt.Errorf("%w: unknown mode %d", ErrConfig, int(cfg.Mode))
	}
	if cfg.Mode == Provider {
		if p := cfg.ProviderPrincipal; int(p) < 0 || int(p) >= n {
			return nil, fmt.Errorf("%w: provider principal %d out of range", ErrConfig, int(p))
		}
	}
	if cfg.Mode == Community && cfg.LocalityCaps != nil && len(cfg.LocalityCaps) != n {
		return nil, fmt.Errorf("%w: locality caps length %d, want %d", ErrConfig, len(cfg.LocalityCaps), n)
	}
	if cfg.MultiResource != nil {
		if cfg.Mode != Community {
			return nil, fmt.Errorf("%w: multi-resource requires Community mode", ErrConfig)
		}
		if len(cfg.MultiResource.Capacities) == 0 {
			return nil, fmt.Errorf("%w: multi-resource needs at least one dimension", ErrConfig)
		}
	}

	flows, err := cfg.System.Flows()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		n:          n,
		windowS:    cfg.Window.Seconds(),
		flows:      flows,
		stats:      &metrics.SolverStats{},
		registered: make(map[int]bool),
		evicted:    make(map[int]bool),
	}
	st, err := e.buildState(flows, cfg.System.Capacities())
	if err != nil {
		return nil, err
	}
	e.commitLocked(flows, st)
	return e, nil
}

// buildState derives a complete new scheduling generation — entitlements,
// scheduler, fresh plan caches — from flows and the given capacity vector
// (requests/second). When the active generation's scheduler is structurally
// compatible, the new one is re-derived from its compiled template
// (sched.NewCommunityFrom / NewProviderFrom) instead of recompiled. Nothing
// visible to redirectors changes until the caller commits or stages the
// result. Callers hold e.mu or own e exclusively.
func (e *Engine) buildState(flows *agreement.Flows, capacities []float64) (schedState, error) {
	var st schedState
	rateAccess, err := flows.Access(capacities)
	if err != nil {
		return st, err
	}
	access := scaleAccess(rateAccess, e.windowS)

	switch e.cfg.Mode {
	case Community:
		if e.cfg.MultiResource != nil {
			return e.buildMulti(flows)
		}
		capWin := make([]float64, e.n)
		for i := 0; i < e.n; i++ {
			capWin[i] = capacities[i] * e.windowS
		}
		var loc []float64
		if e.cfg.LocalityCaps != nil {
			loc = make([]float64, e.n)
			for i, c := range e.cfg.LocalityCaps {
				loc[i] = c * e.windowS
			}
		}
		community, err := sched.NewCommunityFrom(e.cur.community, access, capWin, loc)
		if err != nil {
			return st, err
		}
		st.access, st.community = access, community
	case Provider:
		p := e.cfg.ProviderPrincipal
		var customers []agreement.Principal
		var mc, oc, prices []float64
		for i := 0; i < e.n; i++ {
			if agreement.Principal(i) == p {
				continue
			}
			customers = append(customers, agreement.Principal(i))
			mc = append(mc, access.MC[i])
			oc = append(oc, access.OC[i])
			price := 1.0
			if v, ok := e.cfg.Prices[agreement.Principal(i)]; ok {
				price = v
			}
			prices = append(prices, price)
		}
		provTotal := capacities[p] * e.windowS
		provider, err := sched.NewProviderFrom(e.cur.provider, mc, oc, prices, provTotal)
		if err != nil {
			return st, err
		}
		st.access, st.customers, st.provTotal, st.provider = access, customers, provTotal, provider
	}
	e.wireState(&st)
	return st, nil
}

// wireState wires telemetry into a freshly built generation and gives it its
// own plan caches: plans computed against another generation's entitlements
// must never satisfy a lookup (each Version invalidates the cache exactly
// once, at build time). Callers hold e.mu or own e exclusively.
func (e *Engine) wireState(st *schedState) {
	e.lastBuilt++
	st.version = e.lastBuilt
	if st.community != nil {
		st.community.SetStats(e.stats)
		st.community.SetLogger(e.Logger())
	}
	if st.provider != nil {
		st.provider.SetStats(e.stats)
		st.provider.SetLogger(e.Logger())
	}
	if e.cfg.PlanCacheQuantum < 0 {
		return // caching disabled: every StartWindow solves
	}
	switch e.cfg.Mode {
	case Community:
		st.plans = sched.NewPlanCache[*sched.Plan](e.cfg.PlanCacheQuantum, e.cfg.PlanCacheLimit, e.stats)
	case Provider:
		st.provPlans = sched.NewPlanCache[*sched.ProviderPlan](e.cfg.PlanCacheQuantum, e.cfg.PlanCacheLimit, e.stats)
	}
}

// commitLocked installs a built generation as the active one, cancelling any
// staged rollout (the direct mutation supersedes it). Callers hold e.mu or
// own e exclusively.
func (e *Engine) commitLocked(flows *agreement.Flows, st schedState) {
	e.flows = flows
	e.cur = st
	e.version = st.version
	e.staged = nil
	e.rolloutGate.Store(0)
}

// buildMulti builds the multi-dimensional scheduler and a synthetic
// request-denominated Access (the binding minimum across dimensions) used
// for conservative fallback and introspection.
func (e *Engine) buildMulti(flows *agreement.Flows) (schedState, error) {
	var st schedState
	mr := e.cfg.MultiResource
	dims := len(mr.Capacities)
	capWin := make([][]float64, dims)
	for d := range mr.Capacities {
		if len(mr.Capacities[d]) != e.n {
			return st, fmt.Errorf("%w: multi capacity dim %d has %d principals, want %d",
				ErrConfig, d, len(mr.Capacities[d]), e.n)
		}
		capWin[d] = make([]float64, e.n)
		for p, v := range mr.Capacities[d] {
			capWin[d][p] = v * e.windowS
		}
	}
	accs, err := flows.MultiAccess(capWin)
	if err != nil {
		return st, err
	}
	multi, err := sched.NewMultiCommunity(accs, capWin, mr.Costs)
	if err != nil {
		return st, err
	}

	// Synthetic per-request entitlements: per pair, the binding minimum
	// across dimensions of entitlement/cost.
	access := &agreement.Access{
		MI: make([][]float64, e.n),
		OI: make([][]float64, e.n),
		MC: make([]float64, e.n),
		OC: make([]float64, e.n),
	}
	reqLimit := func(get func(a *agreement.Access) float64, i int) float64 {
		lim := -1.0
		for d := 0; d < dims; d++ {
			if e.cfg.MultiResource.Costs[i][d] <= 0 {
				continue
			}
			v := get(accs[d]) / e.cfg.MultiResource.Costs[i][d]
			if lim < 0 || v < lim {
				lim = v
			}
		}
		if lim < 0 {
			return 0
		}
		return lim
	}
	for k := 0; k < e.n; k++ {
		access.MI[k] = make([]float64, e.n)
		access.OI[k] = make([]float64, e.n)
	}
	for i := 0; i < e.n; i++ {
		for k := 0; k < e.n; k++ {
			k := k
			mi := reqLimit(func(a *agreement.Access) float64 { return a.MI[k][i] }, i)
			total := reqLimit(func(a *agreement.Access) float64 { return a.MI[k][i] + a.OI[k][i] }, i)
			if total < mi {
				total = mi
			}
			access.MI[k][i] = mi
			access.OI[k][i] = total - mi
			access.MC[i] += mi
			access.OC[i] += total - mi
		}
	}
	st.access, st.multi = access, multi
	e.wireState(&st)
	return st, nil
}

// UpdateMultiResource re-interprets the agreements against new capacity
// vectors in multi-resource mode (the §2.2 dynamic property, vectorized) and
// returns the Version now active. See the Engine mutator contract: the whole
// rebuild runs under e.mu, the configuration is rolled back on error, and
// the new generation gets fresh plan caches.
func (e *Engine) UpdateMultiResource(capacities [][]float64) (Version, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.MultiResource == nil {
		return e.version, fmt.Errorf("%w: engine is not multi-resource", ErrConfig)
	}
	old := e.cfg.MultiResource.Capacities
	e.cfg.MultiResource.Capacities = capacities
	st, err := e.buildMulti(e.flows)
	if err != nil {
		e.cfg.MultiResource.Capacities = old
		return e.version, err
	}
	e.commitLocked(e.flows, st)
	return e.version, nil
}

// UpdateCapacities re-interprets the agreements against new physical
// resource levels (requests/second, indexed by principal) without
// re-enumerating agreement paths — the paper's §2.2 dynamic-interpretation
// property — and returns the Version now active. The system object is kept
// in sync; on error both it and the schedulers are left as they were. See
// the Engine mutator contract: safe to call while redirectors are running
// (health checkers do, from their probe goroutines); the next StartWindow
// uses the new entitlements.
func (e *Engine) UpdateCapacities(capacities []float64) (Version, error) {
	// The whole update runs under e.mu: health checkers call this from their
	// probe goroutines, concurrently with window scheduling and each other.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.MultiResource != nil {
		return e.version, fmt.Errorf("%w: use UpdateMultiResource on a multi-resource engine", ErrConfig)
	}
	if len(capacities) != e.n {
		return e.version, fmt.Errorf("%w: %d capacities for %d principals", ErrConfig, len(capacities), e.n)
	}
	old := e.cfg.System.Capacities()
	for i, v := range capacities {
		if err := e.cfg.System.SetCapacity(agreement.Principal(i), v); err != nil {
			for j := 0; j < i; j++ {
				_ = e.cfg.System.SetCapacity(agreement.Principal(j), old[j])
			}
			return e.version, err
		}
	}
	st, err := e.buildState(e.flows, capacities)
	if err != nil {
		for i := range old {
			_ = e.cfg.System.SetCapacity(agreement.Principal(i), old[i])
		}
		return e.version, err
	}
	e.commitLocked(e.flows, st)
	return e.version, nil
}

// Capacities returns a copy of the current physical capacity vector,
// indexed by principal. Health-driven re-interpretation captures this as the
// nominal baseline before scaling owners by their surviving backends.
func (e *Engine) Capacities() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg.System.Capacities()
}

// System returns the engine's agreement system. Mutating it directly
// bypasses the mutator contract — use SetAgreement/StageSet (or a
// ctrlplane.Plane, which validates on a private clone first) instead;
// direct mutation followed by UpdateSystem remains supported for static
// reconfiguration in tests.
func (e *Engine) System() *agreement.System { return e.cfg.System }

// UpdateSystem refolds the agreement graph after structural changes
// (SetAgreement calls on the engine's System) and returns the Version now
// active. More expensive than UpdateCapacities: the simple-path enumeration
// reruns. See the Engine mutator contract.
func (e *Engine) UpdateSystem() (Version, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	flows, err := e.cfg.System.Flows()
	if err != nil {
		return e.version, err
	}
	st, err := e.buildState(flows, e.cfg.System.Capacities())
	if err != nil {
		return e.version, err
	}
	e.commitLocked(flows, st)
	return e.version, nil
}

// SetAgreement renegotiates one direct agreement owner→user to [lb, ub]
// (lb = ub = 0 removes it) and commits the resulting generation, returning
// the Version now active. Unlike UpdateSystem it refolds incrementally: only
// simple paths through the dirty owner are re-enumerated
// (agreement.RefoldFrom), so the cost is proportional to the affected
// subgraph. On error the system is rolled back to the prior agreement. See
// the Engine mutator contract.
func (e *Engine) SetAgreement(owner, user agreement.Principal, lb, ub float64) (Version, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	oldLB, oldUB, had := e.cfg.System.AgreementBetween(owner, user)
	if err := e.cfg.System.SetAgreement(owner, user, lb, ub); err != nil {
		return e.version, err
	}
	undo := func() {
		if had {
			_ = e.cfg.System.SetAgreement(owner, user, oldLB, oldUB)
		} else {
			_ = e.cfg.System.SetAgreement(owner, user, 0, 0)
		}
	}
	flows, err := e.cfg.System.RefoldFrom(e.flows, []agreement.Principal{owner})
	if err != nil {
		undo()
		return e.version, err
	}
	st, err := e.buildState(flows, e.cfg.System.Capacities())
	if err != nil {
		undo()
		return e.version, err
	}
	e.commitLocked(flows, st)
	return e.version, nil
}

// StageSet applies a versioned agreement set (a control-plane snapshot) and
// stages the resulting generation behind gateEpoch: every redirector keeps
// scheduling on the active generation until its combining-tree epoch reaches
// the gate AND it has learned of the set (Redirector.SetRollout), then swaps
// at its next window boundary. gateEpoch <= 0 — or an engine with no
// registered redirectors — commits immediately. Sets at or below the newest
// accepted version are ignored (idempotent re-delivery). Returns the staged
// (or committed) Version. See the Engine mutator contract; the incremental
// refold covers exactly the owners the set changed.
func (e *Engine) StageSet(set *agreement.Set, gateEpoch int) (Version, error) {
	if set == nil {
		return e.Version(), fmt.Errorf("%w: nil agreement set", ErrConfig)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if set.Version <= e.lastSet {
		return e.version, nil
	}
	undo := e.cfg.System.Snapshot(0)
	dirty, err := e.cfg.System.ApplySet(set)
	if err != nil {
		return e.version, err // ApplySet is all-or-nothing
	}
	flows, err := e.cfg.System.RefoldFrom(e.flows, dirty)
	if err != nil {
		_, _ = e.cfg.System.ApplySet(undo)
		return e.version, err
	}
	st, err := e.buildState(flows, e.cfg.System.Capacities())
	if err != nil {
		_, _ = e.cfg.System.ApplySet(undo)
		return e.version, err
	}
	e.lastSet = set.Version
	if gateEpoch <= 0 || e.quorumLocked() == 0 {
		e.commitLocked(flows, st)
		return e.version, nil
	}
	e.flows = flows
	e.staged = &stagedGen{
		state:      st,
		setVersion: set.Version,
		gateEpoch:  gateEpoch,
		crossed:    make(map[int]bool),
	}
	e.rolloutGate.Store(int64(gateEpoch))
	return st.version, nil
}

// Version returns the active generation number.
func (e *Engine) Version() Version {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// LastSetVersion returns the newest agreement-set version accepted by
// StageSet (0 before any).
func (e *Engine) LastSetVersion() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lastSet
}

// Rollout snapshots the version/rollout state for the admin API and metrics.
func (e *Engine) Rollout() RolloutInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	info := RolloutInfo{
		Active:      e.version,
		SetVersion:  e.lastSet,
		Redirectors: len(e.registered),
		Evicted:     len(e.evicted),
		Rollouts:    e.rollouts,
	}
	if e.staged != nil {
		info.Staged = e.staged.state.version
		info.GateEpoch = e.staged.gateEpoch
		info.Crossed = len(e.staged.crossed)
	}
	return info
}

// schedState is the immutable per-window view a redirector schedules
// against. The caches travel with the schedulers they memoize, so a window
// racing a rebuild stores its plan in the cache generation that matches the
// scheduler it solved with.
type schedState struct {
	version   Version
	access    *agreement.Access
	community *sched.Community
	multi     *sched.MultiCommunity
	provider  *sched.Provider
	customers []agreement.Principal
	provTotal float64
	plans     *sched.PlanCache[*sched.Plan]
	provPlans *sched.PlanCache[*sched.ProviderPlan]
}

// snapshot returns the current scheduling state under the read lock.
func (e *Engine) snapshot() schedState {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cur
}

// stateFor resolves the generation redirector id's next window schedules
// against. epoch is the redirector's current combining-tree epoch (the max
// of local and global-broadcast epochs) and known the newest agreement-set
// version it has seen from the tree. On the steady-state hot path — no
// rollout in flight — this is one atomic load on top of the plain snapshot.
// During a rollout, a redirector whose epoch and known version have both
// reached the staged gate swaps to the staged generation (and the generation
// is promoted once all redirectors have); one past the gate epoch that has
// NOT learned of the new set is stale, and the second result tells it to
// fall back to the conservative claim rather than enforce superseded
// entitlements.
func (e *Engine) stateFor(id, epoch int, known uint64) (schedState, bool) {
	if e.rolloutGate.Load() == 0 {
		return e.snapshot(), false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	sg := e.staged
	if sg == nil {
		return e.cur, false
	}
	if epoch < sg.gateEpoch {
		return e.cur, false // rollout not due yet at this admission point
	}
	if known < sg.setVersion {
		return e.cur, true // past the gate without the set: conservative
	}
	sg.crossed[id] = true
	// Liveness valve: a caller this far past the gate proves the fleet kept
	// ticking; quorum members that still have not crossed are presumed dead
	// and evicted so the rollout can commit (see Config.RolloutGraceEpochs).
	if g := e.cfg.RolloutGraceEpochs; g > 0 && epoch >= sg.gateEpoch+g {
		for rid := range e.registered {
			if !sg.crossed[rid] && !e.evicted[rid] {
				e.evicted[rid] = true
			}
		}
	}
	if e.maybePromoteLocked() {
		return e.cur, false
	}
	return sg.state, false
}

// quorumLocked counts the admission points promotion waits on: registered
// and not evicted. Callers hold e.mu.
func (e *Engine) quorumLocked() int {
	q := 0
	for id := range e.registered {
		if !e.evicted[id] {
			q++
		}
	}
	return q
}

// maybePromoteLocked promotes the staged generation when every quorum
// member has crossed (or the quorum is empty), reporting whether a
// promotion happened. Callers hold e.mu.
func (e *Engine) maybePromoteLocked() bool {
	sg := e.staged
	if sg == nil {
		return false
	}
	for id := range e.registered {
		if !e.evicted[id] && !sg.crossed[id] {
			return false
		}
	}
	e.rollouts++
	e.commitLocked(e.flows, sg.state)
	return true
}

// EvictRedirector removes a registered admission point from the rollout
// promotion quorum — the liveness valve failure detection pulls when a
// redirector misses consecutive epochs. If a rollout is in flight and the
// evicted member was the last holdout, the staged generation commits
// immediately. A later NewRedirector with the same id (the process
// restarting) re-admits it: until its rejoin delivers the current set it
// simply runs the laggard conservative-fallback path. Evicting an unknown
// id is a no-op.
func (e *Engine) EvictRedirector(id int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.registered[id] || e.evicted[id] {
		return
	}
	e.evicted[id] = true
	e.maybePromoteLocked()
}

// communityPlan returns the window plan for the global queue vector n,
// serving it from the shared plan cache when one is enabled: the R
// redirectors holding the same quantized aggregate trigger one LP solve per
// window instead of R. The second result reports whether the plan came from
// the cache (trace records expose it per window).
func (e *Engine) communityPlan(st schedState, n []float64) (*sched.Plan, bool, error) {
	solve := func() (*sched.Plan, error) {
		if st.multi != nil {
			return st.multi.Schedule(n)
		}
		return st.community.Schedule(n)
	}
	if st.plans == nil {
		plan, err := solve()
		return plan, false, err
	}
	return st.plans.Do(n, solve)
}

// providerPlan is communityPlan's Provider-mode counterpart; the cache key
// is the full global vector, the solve maps it onto customer indices.
func (e *Engine) providerPlan(st schedState, n []float64) (*sched.ProviderPlan, bool, error) {
	solve := func() (*sched.ProviderPlan, error) {
		q := make([]float64, len(st.customers))
		for ci, p := range st.customers {
			q[ci] = n[p]
		}
		return st.provider.Schedule(q)
	}
	if st.provPlans == nil {
		plan, err := solve()
		return plan, false, err
	}
	return st.provPlans.Do(n, solve)
}

// Stats exposes the engine's shared fast-path telemetry: plan-cache hit and
// miss counts, LP solve count and latency, and mandatory-floor fallbacks.
func (e *Engine) Stats() *metrics.SolverStats { return e.stats }

// Logger returns the engine's structured logger (never nil).
func (e *Engine) Logger() *obs.Logger {
	if e.cfg.Logger != nil {
		return e.cfg.Logger
	}
	return obs.Default()
}

// PrincipalNames returns the system's principal names in index order — the
// labels observability series are keyed by.
func (e *Engine) PrincipalNames() []string {
	names := make([]string, e.n)
	for i := range names {
		names[i] = e.cfg.System.Name(agreement.Principal(i))
	}
	return names
}

// NewObserver builds a window-trace observer for redirector id, labeled with
// the engine's principals. Auditor (nil: build a private one) and ringDepth
// (<=0: obs.DefaultRingDepth) parameterize sharing and retention; install
// the result with Redirector.SetObserver.
func (e *Engine) NewObserver(id int, auditor *obs.Auditor, ringDepth int) *obs.Observer {
	return obs.NewObserver(obs.ObserverConfig{
		Redirector: id,
		Names:      e.PrincipalNames(),
		RingDepth:  ringDepth,
		Auditor:    auditor,
		Logger:     e.cfg.Logger,
	})
}

func scaleAccess(a *agreement.Access, f float64) *agreement.Access {
	n := len(a.MC)
	out := &agreement.Access{
		MI:    make([][]float64, n),
		OI:    make([][]float64, n),
		MC:    make([]float64, n),
		OC:    make([]float64, n),
		Gross: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		out.MI[i] = make([]float64, n)
		out.OI[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			out.MI[i][j] = a.MI[i][j] * f
			out.OI[i][j] = a.OI[i][j] * f
		}
		out.MC[i] = a.MC[i] * f
		out.OC[i] = a.OC[i] * f
		out.Gross[i] = a.Gross[i] * f
	}
	return out
}

// NumPrincipals reports the number of principals in the system.
func (e *Engine) NumPrincipals() int { return e.n }

// Window returns the scheduling window.
func (e *Engine) Window() time.Duration { return e.cfg.Window }

// Mode returns the optimization context.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// ProviderPrincipal returns the owner of the servers in Provider mode
// (meaningless in Community mode).
func (e *Engine) ProviderPrincipal() agreement.Principal { return e.cfg.ProviderPrincipal }

// Access exposes the per-window entitlements (MI/OI/MC/OC scaled to the
// window) for inspection and tests.
func (e *Engine) Access() *agreement.Access {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cur.access
}

// SetLeaseCredits installs the lease-credit snapshot redirectors deposit on
// top of the LP plan each window. matrix[holder][owner] and total[holder]
// are dedicated rates in requests/second (scaled to the window here);
// Community deposits from the matrix, Provider from the totals. Passing nil
// for both clears all lease credit. The snapshot swaps atomically — a
// window in flight finishes on the credits it read — and deliberately does
// NOT bump the scheduling generation: the entitlement side of a lease (the
// owner's capacity set-aside) rides the versioned mutator path, while the
// credit side is plain per-window data.
func (e *Engine) SetLeaseCredits(matrix [][]float64, total []float64) error {
	if matrix == nil && total == nil {
		e.leases.Store(nil)
		return nil
	}
	lc := &leaseCredits{}
	if matrix != nil {
		if len(matrix) != e.n {
			return fmt.Errorf("%w: lease matrix has %d holders, want %d", ErrConfig, len(matrix), e.n)
		}
		lc.matrix = make([][]float64, e.n)
		for h := range matrix {
			if len(matrix[h]) != e.n {
				return fmt.Errorf("%w: lease matrix row %d has %d owners, want %d",
					ErrConfig, h, len(matrix[h]), e.n)
			}
			lc.matrix[h] = make([]float64, e.n)
			for o, v := range matrix[h] {
				if v < 0 {
					return fmt.Errorf("%w: negative lease rate %v", ErrConfig, v)
				}
				lc.matrix[h][o] = v * e.windowS
			}
		}
	}
	if total != nil {
		if len(total) != e.n {
			return fmt.Errorf("%w: lease totals have %d holders, want %d", ErrConfig, len(total), e.n)
		}
		lc.total = make([]float64, e.n)
		for h, v := range total {
			if v < 0 {
				return fmt.Errorf("%w: negative lease rate %v", ErrConfig, v)
			}
			lc.total[h] = v * e.windowS
		}
	}
	e.leases.Store(lc)
	return nil
}

// LeaseCredits reports the currently installed lease-credit rates in
// requests/second (summed over owners per holder), or nil when none are set.
func (e *Engine) LeaseCredits() []float64 {
	lc := e.leases.Load()
	if lc == nil {
		return nil
	}
	out := make([]float64, e.n)
	switch {
	case lc.matrix != nil:
		for h := range lc.matrix {
			for _, v := range lc.matrix[h] {
				out[h] += v / e.windowS
			}
		}
	case lc.total != nil:
		for h, v := range lc.total {
			out[h] = v / e.windowS
		}
	}
	return out
}

// Customers returns, in LP order, the customer principals of a Provider
// engine (nil for Community engines).
func (e *Engine) Customers() []agreement.Principal {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]agreement.Principal(nil), e.cur.customers...)
}

// DescribeEntitlements renders the folded per-principal entitlements in
// requests/second — the operator-facing summary cmd/redirector logs at
// startup so a deployment's effective guarantees are visible at a glance.
func (e *Engine) DescribeEntitlements() string {
	e.mu.RLock()
	access := e.cur.access
	e.mu.RUnlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "entitlements (%s mode, %v windows):\n", e.cfg.Mode, e.cfg.Window)
	for i := 0; i < e.n; i++ {
		name := e.cfg.System.Name(agreement.Principal(i))
		fmt.Fprintf(&sb, "  %-12s mandatory %8.1f req/s, optional %8.1f req/s\n",
			name, access.MC[i]/e.windowS, access.OC[i]/e.windowS)
	}
	return sb.String()
}
