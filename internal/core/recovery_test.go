package core

import (
	"testing"
	"time"

	"repro/internal/agreement"
)

// runWindows drives the given redirectors through windows [from, to] with a
// fixed global aggregate, feeding each its rollout view.
func runWindows(t *testing.T, reds []*Redirector, from, to int, known uint64) {
	t.Helper()
	global := []float64{80, 40}
	for w := from; w <= to; w++ {
		now := time.Duration(w) * 100 * time.Millisecond
		for _, r := range reds {
			if r == nil {
				continue // crashed: schedules no windows
			}
			r.SetGlobal(global, now)
			r.SetRollout(w, known)
			if err := r.StartWindow(now); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEvictionUnblocksRollout is the satellite-1 regression: one of three
// registered redirectors dies before ever calling SetRollout; promotion
// must not stall forever. Failure detection evicts the dead member and the
// set commits on the survivors alone.
func TestEvictionUnblocksRollout(t *testing.T) {
	e, a, b := communityEngine(t, 3)
	reds := []*Redirector{e.NewRedirector(0), e.NewRedirector(1), e.NewRedirector(2)}
	runWindows(t, reds, 1, 3, 0)

	stageRenegotiation(t, e, a, b, 0.25, 0.25, 1, 5)
	reds[2] = nil // redirector 2 crashes before the gate: no SetRollout ever

	runWindows(t, reds, 4, 8, 1)
	if info := e.Rollout(); info.Staged == 0 || info.Rollouts != 0 {
		t.Fatalf("rollout promoted (or vanished) without full quorum: %+v", info)
	}

	// Failure detection notices the silent member and evicts it: the two
	// survivors, both past the gate with the set, now form the whole quorum
	// and the staged generation commits immediately.
	e.EvictRedirector(2)
	info := e.Rollout()
	if info.Staged != 0 || info.Rollouts != 1 {
		t.Fatalf("eviction did not unblock the rollout: %+v", info)
	}
	if info.Evicted != 1 || info.Redirectors != 3 {
		t.Fatalf("eviction bookkeeping: %+v", info)
	}
	if mc := e.Access().MC[a]; mc != 40 {
		t.Fatalf("post-commit MC_A = %v, want 40", mc)
	}
}

// TestGraceValveEvictsLaggards pins the automatic liveness valve: with
// RolloutGraceEpochs set, a quorum member that stays silent this many
// epochs past the gate is evicted by the survivors' own window progress —
// no explicit failure-detector call needed.
func TestGraceValveEvictsLaggards(t *testing.T) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	e, err := NewEngine(Config{
		Mode:               Community,
		System:             s,
		Window:             100 * time.Millisecond,
		NumRedirectors:     2,
		RolloutGraceEpochs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reds := []*Redirector{e.NewRedirector(0), e.NewRedirector(1)}
	runWindows(t, reds, 1, 3, 0)
	stageRenegotiation(t, e, a, b, 0.25, 0.25, 1, 5)
	reds[1] = nil // dies without ever acknowledging

	// Windows 5..7: past the gate but within grace — promotion holds.
	runWindows(t, reds, 5, 7, 1)
	if info := e.Rollout(); info.Staged == 0 {
		t.Fatalf("promoted inside the grace window: %+v", info)
	}
	// Window 8 = gate+3: the valve opens, the laggard is evicted, the
	// survivor's crossing commits the set.
	runWindows(t, reds, 8, 8, 1)
	info := e.Rollout()
	if info.Staged != 0 || info.Rollouts != 1 || info.Evicted != 1 {
		t.Fatalf("grace valve did not evict and promote: %+v", info)
	}
}

// TestReregistrationIdempotent pins restart identity semantics: a crashed
// redirector re-registering under its old id neither inflates the quorum
// nor stays evicted — it is re-admitted and must cross before the next
// rollout promotes.
func TestReregistrationIdempotent(t *testing.T) {
	e, a, b := communityEngine(t, 2)
	r0 := e.NewRedirector(0)
	_ = e.NewRedirector(1)
	if info := e.Rollout(); info.Redirectors != 2 {
		t.Fatalf("registered %d, want 2", info.Redirectors)
	}
	e.EvictRedirector(1)
	// The restarted process re-registers under id 1: same quorum size,
	// eviction cleared.
	r1 := e.NewRedirector(1)
	info := e.Rollout()
	if info.Redirectors != 2 || info.Evicted != 0 {
		t.Fatalf("re-registration bookkeeping: %+v", info)
	}

	runWindows(t, []*Redirector{r0, r1}, 1, 3, 0)
	stageRenegotiation(t, e, a, b, 0.25, 0.25, 1, 5)
	// Only r0 crosses: the re-admitted r1 (restored but not yet caught up,
	// known=0) blocks promotion and runs the conservative claim, exactly
	// the laggard fallback path.
	global := []float64{80, 40}
	now := 600 * time.Millisecond
	r0.SetGlobal(global, now)
	r0.SetRollout(6, 1)
	if err := r0.StartWindow(now); err != nil {
		t.Fatal(err)
	}
	r1.SetGlobal(global, now)
	r1.SetRollout(6, 0)
	cons := r1.Conservative
	if err := r1.StartWindow(now); err != nil {
		t.Fatal(err)
	}
	if r1.Conservative != cons+1 {
		t.Fatal("re-admitted redirector did not fall back to the conservative claim")
	}
	if info := e.Rollout(); info.Staged == 0 || info.Rollouts != 0 {
		t.Fatalf("promoted without the re-admitted member: %+v", info)
	}
	// The rejoin handshake delivers the set; r1 crosses and the rollout
	// converges.
	runWindows(t, []*Redirector{r0, r1}, 7, 7, 1)
	if info := e.Rollout(); info.Staged != 0 || info.Rollouts != 1 {
		t.Fatalf("rollout did not converge after rejoin: %+v", info)
	}
	if mc := e.Access().MC[a]; mc != 40 {
		t.Fatalf("post-swap MC_A = %v, want 40", mc)
	}
}
