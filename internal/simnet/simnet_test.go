package simnet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestDeliveryWithDefaultDelay(t *testing.T) {
	c := vclock.New()
	n := New(c, 5*time.Millisecond)
	var got []string
	var at time.Duration
	n.Handle(2, func(from NodeID, msg interface{}) {
		got = append(got, msg.(string))
		at = c.Now()
	})
	n.Send(1, 2, "hello")
	c.RunUntil(time.Second)
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got = %v", got)
	}
	if at != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", at)
	}
}

func TestPerLinkDelayOverride(t *testing.T) {
	c := vclock.New()
	n := New(c, time.Millisecond)
	n.SetDelay(1, 2, 10*time.Second)
	var order []NodeID
	handler := func(self NodeID) Handler {
		return func(from NodeID, msg interface{}) { order = append(order, self) }
	}
	n.Handle(2, handler(2))
	n.Handle(3, handler(3))
	n.Send(1, 2, "slow")
	n.Send(1, 3, "fast")
	c.RunUntil(time.Minute)
	if len(order) != 2 || order[0] != 3 || order[1] != 2 {
		t.Fatalf("order = %v, want [3 2]", order)
	}
	if n.Delay(1, 2) != 10*time.Second || n.Delay(2, 1) != time.Millisecond {
		t.Fatal("Delay lookup wrong")
	}
}

func TestSymmetricDelay(t *testing.T) {
	c := vclock.New()
	n := New(c, 0)
	n.SetSymmetricDelay(1, 2, 7*time.Millisecond)
	if n.Delay(1, 2) != 7*time.Millisecond || n.Delay(2, 1) != 7*time.Millisecond {
		t.Fatal("symmetric delay not applied both ways")
	}
}

func TestNoHandlerCountsAsSentOnly(t *testing.T) {
	c := vclock.New()
	n := New(c, 0)
	n.Send(1, 9, "void")
	c.RunUntil(time.Second)
	if n.Sent != 1 || n.Delivered != 0 {
		t.Fatalf("sent=%d delivered=%d", n.Sent, n.Delivered)
	}
}

func TestLossInjection(t *testing.T) {
	c := vclock.New()
	n := New(c, 0)
	n.Handle(2, func(NodeID, interface{}) {})
	n.SetLossRate(0.5, 42)
	const total = 1000
	for i := 0; i < total; i++ {
		n.Send(1, 2, i)
	}
	c.RunUntil(time.Second)
	if n.Delivered == total || n.Delivered == 0 {
		t.Fatalf("loss rate 0.5 delivered %d of %d", n.Delivered, total)
	}
	if n.Delivered < total/3 || n.Delivered > 2*total/3 {
		t.Fatalf("delivered %d of %d, far from half", n.Delivered, total)
	}
	// Clamping.
	n.SetLossRate(-1, 1)
	n.SetLossRate(2, 1)
}

func TestBytesAccountingAndReset(t *testing.T) {
	c := vclock.New()
	n := New(c, 0)
	n.SendSized(1, 2, "x", 128)
	n.SendSized(1, 2, "y", 72)
	if n.Bytes != 200 || n.Sent != 2 {
		t.Fatalf("bytes=%d sent=%d", n.Bytes, n.Sent)
	}
	if !strings.Contains(n.String(), "sent=2") {
		t.Fatalf("String() = %q", n.String())
	}
	n.ResetCounters()
	if n.Bytes != 0 || n.Sent != 0 || n.Delivered != 0 {
		t.Fatal("counters not reset")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	c := vclock.New()
	n := New(c, 0)
	n.SetDelay(1, 2, -time.Second)
	if n.Delay(1, 2) != 0 {
		t.Fatal("negative delay not clamped")
	}
}
