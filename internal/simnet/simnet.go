// Package simnet provides a simulated message network over virtual time for
// the experiment harness: point-to-point messages with configurable per-link
// propagation delay, optional loss injection, and message accounting (used
// by the tree-vs-pairwise coordination ablation).
//
// The paper's Figure 8 experiment deliberately adds a 10-second lag to the
// combining tree; here that is a single SetDelay call.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/vclock"
)

// NodeID identifies an endpoint on the network.
type NodeID int

// Handler consumes messages delivered to a node.
type Handler func(from NodeID, msg interface{})

type link struct{ from, to NodeID }

// Network is a simulated network. It is driven by the vclock owner and is
// not safe for concurrent use.
type Network struct {
	clock        *vclock.Clock
	defaultDelay time.Duration
	delays       map[link]time.Duration
	cut          map[link]bool
	handlers     map[NodeID]Handler
	lossRate     float64
	rng          *rand.Rand

	// Sent counts every Send call; Delivered counts messages that reached a
	// handler (Sent − Delivered = dropped by loss or missing handler).
	Sent      int
	Delivered int
	// Bytes is a caller-maintained hint (see SendSized) for bandwidth
	// accounting in ablation benches.
	Bytes int
}

// New creates a network on the given clock with the given default one-way
// propagation delay.
func New(clock *vclock.Clock, defaultDelay time.Duration) *Network {
	return &Network{
		clock:        clock,
		defaultDelay: defaultDelay,
		delays:       make(map[link]time.Duration),
		cut:          make(map[link]bool),
		handlers:     make(map[NodeID]Handler),
		rng:          rand.New(rand.NewSource(1)),
	}
}

// Handle registers the message handler for a node, replacing any previous
// handler.
func (n *Network) Handle(id NodeID, h Handler) { n.handlers[id] = h }

// SetDelay overrides the one-way delay on the directed link from→to.
func (n *Network) SetDelay(from, to NodeID, d time.Duration) {
	if d < 0 {
		d = 0
	}
	n.delays[link{from, to}] = d
}

// SetSymmetricDelay overrides the delay in both directions.
func (n *Network) SetSymmetricDelay(a, b NodeID, d time.Duration) {
	n.SetDelay(a, b, d)
	n.SetDelay(b, a, d)
}

// SetPartitioned cuts (down=true) or heals (down=false) the link between a
// and b in both directions. Messages sent over a cut link are counted as
// sent but silently dropped — a network partition, not a delay.
func (n *Network) SetPartitioned(a, b NodeID, down bool) {
	if down {
		n.cut[link{a, b}] = true
		n.cut[link{b, a}] = true
	} else {
		delete(n.cut, link{a, b})
		delete(n.cut, link{b, a})
	}
}

// SetLossRate drops each message independently with probability p (0 ≤ p ≤ 1),
// using a deterministic seeded source.
func (n *Network) SetLossRate(p float64, seed int64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	n.lossRate = p
	n.rng = rand.New(rand.NewSource(seed))
}

// Delay reports the effective one-way delay from→to.
func (n *Network) Delay(from, to NodeID) time.Duration {
	if d, ok := n.delays[link{from, to}]; ok {
		return d
	}
	return n.defaultDelay
}

// Send schedules delivery of msg to the destination's handler after the
// link's propagation delay. Messages to nodes without handlers are counted
// as sent but never delivered.
func (n *Network) Send(from, to NodeID, msg interface{}) {
	n.SendSized(from, to, msg, 0)
}

// SendSized is Send with a payload-size hint for bandwidth accounting.
func (n *Network) SendSized(from, to NodeID, msg interface{}, size int) {
	n.Sent++
	n.Bytes += size
	if n.cut[link{from, to}] {
		return
	}
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		return
	}
	n.clock.Schedule(n.Delay(from, to), func() {
		if h, ok := n.handlers[to]; ok {
			n.Delivered++
			h(from, msg)
		}
	})
}

// ResetCounters zeroes the Sent/Delivered/Bytes accounting.
func (n *Network) ResetCounters() { n.Sent, n.Delivered, n.Bytes = 0, 0, 0 }

// String summarizes traffic counters.
func (n *Network) String() string {
	return fmt.Sprintf("simnet{sent=%d delivered=%d bytes=%d}", n.Sent, n.Delivered, n.Bytes)
}
