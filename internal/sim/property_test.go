package sim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestRandomScenarioInvariants is the end-to-end soak: random agreement
// graphs, random demands, random redirector counts — after convergence the
// full stack must uphold the paper's two core guarantees:
//
//  1. Safety: no server processes more than its capacity.
//  2. Mandatory guarantee: a principal whose demand meets or exceeds its
//     mandatory rate is served at least ≈ that rate.
func TestRandomScenarioInvariants(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			runRandomScenario(t, rng)
		})
	}
}

// TestRandomPhasedScenarioInvariants adds random load phase changes on top
// of the static soak: clients toggle on and off mid-run, and the guarantees
// must hold during the final stable phase regardless of history.
func TestRandomPhasedScenarioInvariants(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		s := agreement.New()
		sp := s.MustAddPrincipal("S", float64(200+rng.Intn(300)))
		a := s.MustAddPrincipal("A", 0)
		b := s.MustAddPrincipal("B", 0)
		lbA := 0.2 + rng.Float64()*0.5
		lbB := 0.9 - lbA
		s.MustSetAgreement(sp, a, lbA, 1)
		s.MustSetAgreement(sp, b, lbB, 1)
		eng, err := core.NewEngine(core.Config{
			Mode:              core.Provider,
			System:            s,
			ProviderPrincipal: sp,
			NumRedirectors:    2,
		})
		if err != nil {
			t.Fatal(err)
		}
		sm, err := New(Config{
			Engine:      eng,
			Redirectors: 2,
			Servers:     []ServerSpec{{Owner: sp, Capacity: s.Capacity(sp), Count: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		demandA := float64(100 + rng.Intn(400))
		demandB := float64(100 + rng.Intn(400))
		ca := sm.NewClient(0, workload.Config{Principal: int(a), Rate: demandA})
		cb := sm.NewClient(1, workload.Config{Principal: int(b), Rate: demandB})
		ca.SetActive(true)
		cb.SetActive(true)
		// Random churn: toggle each client a few times before t=40 s.
		for i := 0; i < 3; i++ {
			at := time.Duration(5+rng.Intn(35)) * time.Second
			c := ca
			if rng.Intn(2) == 0 {
				c = cb
			}
			sm.At(at, func() { c.SetActive(!c.Active()) })
		}
		// Force both on for the final stable phase.
		sm.At(40*time.Second, func() { ca.SetActive(true); cb.SetActive(true) })
		sm.Run(70 * time.Second)

		acc, err := s.SystemAccess()
		if err != nil {
			t.Fatal(err)
		}
		servedA := sm.Recorder.MeanRateBetween(int(a), 52*time.Second, 69*time.Second)
		servedB := sm.Recorder.MeanRateBetween(int(b), 52*time.Second, 69*time.Second)
		checkFloor := func(name string, served, demand, mc float64) {
			if demand >= mc && mc > 5 && served < mc*0.88-5 {
				t.Errorf("trial %d: %s served %.1f below mandatory %.1f after churn",
					trial, name, served, mc)
			}
		}
		checkFloor("A", servedA, demandA, acc.MC[a])
		checkFloor("B", servedB, demandB, acc.MC[b])
		if total := servedA + servedB; total > s.Capacity(sp)*1.02 {
			t.Errorf("trial %d: total %.1f exceeds capacity %.1f", trial, total, s.Capacity(sp))
		}
	}
}

func runRandomScenario(t *testing.T, rng *rand.Rand) {
	t.Helper()
	s := agreement.New()
	n := 2 + rng.Intn(3) // owners+users
	owners := 0
	for i := 0; i < n; i++ {
		capacity := 0.0
		if rng.Float64() < 0.7 || (i == n-1 && owners == 0) {
			capacity = float64(100 + rng.Intn(300))
			owners++
		}
		s.MustAddPrincipal(string(rune('A'+i)), capacity)
	}
	for i := 0; i < n; i++ {
		if s.Capacity(agreement.Principal(i)) == 0 {
			continue // only owners grant
		}
		budget := 0.9
		for j := 0; j < n; j++ {
			if j == i || rng.Float64() < 0.4 {
				continue
			}
			lb := rng.Float64() * budget * 0.8
			ub := lb + rng.Float64()*(1-lb)
			if s.SetAgreement(agreement.Principal(i), agreement.Principal(j), lb, ub) != nil {
				continue
			}
			budget -= lb
		}
	}
	redirectors := 1 + rng.Intn(3)
	eng, err := core.NewEngine(core.Config{
		Mode:           core.Community,
		System:         s,
		NumRedirectors: redirectors,
	})
	if err != nil {
		t.Fatal(err)
	}
	var servers []ServerSpec
	for i := 0; i < n; i++ {
		if c := s.Capacity(agreement.Principal(i)); c > 0 {
			servers = append(servers, ServerSpec{Owner: agreement.Principal(i), Capacity: c, Count: 1})
		}
	}
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: redirectors,
		Servers:     servers,
	})
	if err != nil {
		t.Fatal(err)
	}

	demand := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			continue // idle principal
		}
		demand[i] = float64(50 + rng.Intn(400))
		sm.NewClient(rng.Intn(redirectors), workload.Config{
			Principal: i,
			Rate:      demand[i],
		}).SetActive(true)
	}

	const (
		warm    = 12 * time.Second
		measure = 20 * time.Second
	)
	sm.Run(warm + measure)

	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		served := sm.Recorder.MeanRateBetween(i, warm, warm+measure)
		// Safety at the principal level: nobody above demand.
		if served > demand[i]*1.05+5 {
			t.Errorf("%s served %.1f with demand %.1f (scenario %v)",
				s.Name(agreement.Principal(i)), served, demand[i], s)
		}
		// Mandatory guarantee (with estimator/carry slack).
		if demand[i] >= acc.MC[i] && acc.MC[i] > 5 {
			if served < acc.MC[i]*0.9-5 {
				t.Errorf("%s served %.1f below mandatory %.1f (demand %.1f, scenario %v)",
					s.Name(agreement.Principal(i)), served, acc.MC[i], demand[i], s)
			}
		}
	}
	// Server safety: completions bounded by capacity.
	for owner, srvs := range sm.Servers {
		for _, srv := range srvs {
			rate := float64(srv.Completed) / (warm + measure).Seconds()
			if rate > srv.Capacity()*1.02 {
				t.Errorf("server of %s processed %.1f/s above capacity %.1f",
					s.Name(owner), rate, srv.Capacity())
			}
		}
	}
}
