package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/workload"
)

func testEngine(t testing.TB, redirectors int) (*core.Engine, agreement.Principal, agreement.Principal, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 100)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.7, 1)
	s.MustSetAgreement(sp, b, 0.3, 1)
	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    redirectors,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, sp, a, b
}

func TestConfigValidation(t *testing.T) {
	eng, sp, _, _ := testEngine(t, 1)
	cases := []Config{
		{},
		{Engine: eng},
		{Engine: eng, Redirectors: 1},
		{Engine: eng, Redirectors: 1, Servers: []ServerSpec{{Owner: sp, Capacity: 0, Count: 1}}},
		{Engine: eng, Redirectors: 1, Servers: []ServerSpec{{Owner: sp, Capacity: 10, Count: 1}}, Names: []string{"x"}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEndToEndEnforcement(t *testing.T) {
	eng, sp, a, b := testEngine(t, 1)
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 1,
		Servers:     []ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
		Names:       []string{"S", "A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ca := sm.NewClient(0, workload.Config{Principal: int(a), Rate: 200})
	cb := sm.NewClient(0, workload.Config{Principal: int(b), Rate: 200})
	ca.SetActive(true)
	cb.SetActive(true)
	sm.Run(30 * time.Second)

	// Both overloaded: mandatory shares bind — A 70/s, B 30/s.
	rateA := sm.Recorder.MeanRateBetween(int(a), 10*time.Second, 29*time.Second)
	rateB := sm.Recorder.MeanRateBetween(int(b), 10*time.Second, 29*time.Second)
	if math.Abs(rateA-70) > 5 || math.Abs(rateB-30) > 5 {
		t.Fatalf("rates = %.1f/%.1f, want ≈70/30", rateA, rateB)
	}
}

func TestAdmitRecorderTracksAdmissions(t *testing.T) {
	eng, sp, a, _ := testEngine(t, 1)
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 1,
		Servers:     []ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := sm.NewClient(0, workload.Config{Principal: int(a), Rate: 50})
	c.SetActive(true)
	sm.Run(10 * time.Second)
	adm := sm.Admit.MeanRateBetween(int(a), 5*time.Second, 9*time.Second)
	if math.Abs(adm-50) > 5 {
		t.Fatalf("admit rate = %.1f, want ≈50", adm)
	}
}

func TestMultiServerLeastLoaded(t *testing.T) {
	eng, sp, a, _ := testEngine(t, 1)
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 1,
		Servers:     []ServerSpec{{Owner: sp, Capacity: 50, Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := sm.NewClient(0, workload.Config{Principal: int(a), Rate: 60})
	c.SetActive(true)
	sm.Run(20 * time.Second)
	s0 := sm.Servers[sp][0]
	s1 := sm.Servers[sp][1]
	if s0.Completed == 0 || s1.Completed == 0 {
		t.Fatalf("load not spread: %d/%d", s0.Completed, s1.Completed)
	}
	ratio := float64(s0.Completed) / float64(s1.Completed)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("imbalanced spread: %d vs %d", s0.Completed, s1.Completed)
	}
}

func TestTwoRedirectorsShareEnforcement(t *testing.T) {
	eng, sp, a, b := testEngine(t, 2)
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 2,
		Servers:     []ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A's load split across both redirectors; B's on one.
	sm.NewClient(0, workload.Config{Principal: int(a), Rate: 100}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(a), Rate: 100}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(b), Rate: 200}).SetActive(true)
	sm.Run(30 * time.Second)
	rateA := sm.Recorder.MeanRateBetween(int(a), 10*time.Second, 29*time.Second)
	rateB := sm.Recorder.MeanRateBetween(int(b), 10*time.Second, 29*time.Second)
	if math.Abs(rateA-70) > 6 || math.Abs(rateB-30) > 6 {
		t.Fatalf("rates = %.1f/%.1f, want ≈70/30 across redirectors", rateA, rateB)
	}
}

func TestSizeAwareScheduling(t *testing.T) {
	// Equal [0.5, 0.5] shares of a 100-units/s provider; A sends 12 KB
	// requests (cost 2 at a 6 KB mean), B sends 3 KB (cost 0.5). Byte-
	// weighted enforcement gives each 50 units/s: A ≈ 25 req/s, B ≈ 100.
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 100)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.5, 0.5)
	s.MustSetAgreement(sp, b, 0.5, 0.5)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Provider, System: s, ProviderPrincipal: sp, NumRedirectors: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := New(Config{
		Engine:           eng,
		Redirectors:      1,
		Servers:          []ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
		Names:            []string{"S", "A", "B"},
		MeanRequestBytes: 6144,
	})
	if err != nil {
		t.Fatal(err)
	}
	sm.NewClient(0, workload.Config{
		Principal: int(a), Rate: 100, Sizes: workload.FixedSize(12288),
	}).SetActive(true)
	sm.NewClient(0, workload.Config{
		Principal: int(b), Rate: 300, Sizes: workload.FixedSize(3072),
	}).SetActive(true)
	sm.Run(30 * time.Second)

	rateA := sm.Recorder.MeanRateBetween(int(a), 10*time.Second, 29*time.Second)
	rateB := sm.Recorder.MeanRateBetween(int(b), 10*time.Second, 29*time.Second)
	if math.Abs(rateA-25) > 3 || math.Abs(rateB-100) > 8 {
		t.Fatalf("rates = %.1f/%.1f req/s, want ≈25/100 (equal byte shares)", rateA, rateB)
	}
	// Byte-weighted work is equal: 2·A ≈ 0.5·B.
	if work := 2 * rateA / (0.5 * rateB); work < 0.85 || work > 1.15 {
		t.Fatalf("byte-share ratio = %.2f, want ≈1", work)
	}
}

func TestResponseTimesRecorded(t *testing.T) {
	// Figure 7 setup: community, equal agreements, A with twice B's load.
	// Max–min equalizes served queue fractions, so both principals see
	// comparable response times — the metric the community LP stands for.
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 250)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.2, 1)
	s.MustSetAgreement(sp, b, 0.2, 1)
	eng, err := core.NewEngine(core.Config{Mode: core.Community, System: s, NumRedirectors: 1})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 1,
		Servers:     []ServerSpec{{Owner: sp, Capacity: 250, Count: 1}},
		Names:       []string{"S", "A", "B"},
		MaxBacklog:  125,
	})
	if err != nil {
		t.Fatal(err)
	}
	sm.NewClient(0, workload.Config{Principal: int(a), Rate: 270}).SetActive(true)
	sm.NewClient(0, workload.Config{Principal: int(b), Rate: 135}).SetActive(true)
	sm.Run(30 * time.Second)

	if sm.Latency.Count(int(a)) == 0 || sm.Latency.Count(int(b)) == 0 {
		t.Fatal("no latency observations")
	}
	meanA := sm.Latency.Mean(int(a)).Seconds()
	meanB := sm.Latency.Mean(int(b)).Seconds()
	if meanA <= 0 || meanB <= 0 {
		t.Fatalf("means = %v/%v", meanA, meanB)
	}
	// Equal served fractions ⇒ response times within 2× of each other.
	ratio := meanA / meanB
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("response-time ratio = %.2f (A %.3fs, B %.3fs), want ≈1", ratio, meanA, meanB)
	}
	if sm.Latency.Quantile(int(a), 0.95) < sm.Latency.Quantile(int(a), 0.5) {
		t.Fatal("quantiles not monotone")
	}
}

func TestSetTreeDelayAndStop(t *testing.T) {
	eng, sp, a, _ := testEngine(t, 2)
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 2,
		Servers:     []ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sm.SetTreeDelay(2 * time.Second)
	c := sm.NewClient(1, workload.Config{Principal: int(a), Rate: 100})
	c.SetActive(true)
	sm.Run(time.Second)
	// Leaf redirector (1) cannot have received a broadcast yet.
	if sm.Redirectors[1].Red.HasGlobal() {
		t.Fatal("broadcast arrived before the delay elapsed")
	}
	sm.Run(6 * time.Second)
	if !sm.Redirectors[1].Red.HasGlobal() {
		t.Fatal("broadcast never arrived")
	}
	sm.Stop() // window driver halts; no further events accumulate
	pendingBefore := sm.Clock.Pending()
	sm.Run(7 * time.Second)
	if sm.Clock.Pending() > pendingBefore {
		t.Fatal("events still accumulating after Stop")
	}
}

func TestTraceDepthWiresObservability(t *testing.T) {
	eng, sp, a, b := testEngine(t, 2)
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 2,
		Servers:     []ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
		Names:       []string{"S", "A", "B"},
		TraceDepth:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sm.Auditor == nil || len(sm.Observers) != 2 {
		t.Fatalf("tracing not wired: auditor=%v observers=%d", sm.Auditor, len(sm.Observers))
	}
	sm.NewClient(0, workload.Config{Principal: int(a), Rate: 150}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(b), Rate: 150}).SetActive(true)
	sm.Run(5 * time.Second)

	// ~50 windows per redirector in 5 s of virtual time at the 100 ms
	// default; the shared auditor sees both redirectors' commits.
	if got := sm.Auditor.Windows(); got < 80 {
		t.Fatalf("auditor saw %d windows, want ≥80", got)
	}
	if sm.Auditor.Served(int(a)) <= 0 || sm.Auditor.Served(int(b)) <= 0 {
		t.Fatal("auditor accumulated no served volume")
	}
	for i, o := range sm.Observers {
		recs := o.Ring().Snapshot(0)
		if len(recs) == 0 {
			t.Fatalf("observer %d has an empty trace ring", i)
		}
		last := recs[len(recs)-1]
		if last.Redirector != i {
			t.Fatalf("observer %d record labeled redirector %d", i, last.Redirector)
		}
		if last.TreeMsgsOut == 0 && last.TreeMsgsIn == 0 {
			t.Fatalf("observer %d has no tree message counts", i)
		}
	}
}

func TestTraceDepthZeroDisablesTracing(t *testing.T) {
	eng, sp, _, _ := testEngine(t, 1)
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 1,
		Servers:     []ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
		Names:       []string{"S", "A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sm.Auditor != nil || sm.Observers != nil {
		t.Fatal("tracing wired despite TraceDepth 0")
	}
}

// TestControlPlaneRacesParallelWindows runs control-plane mutations from a
// separate goroutine while the simulation schedules redirector windows on
// its parallel worker pool — the combination the race detector must bless
// (CI runs this package under -race). Determinism is irrelevant here; only
// synchronization is under test.
func TestControlPlaneRacesParallelWindows(t *testing.T) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	eng, err := core.NewEngine(core.Config{Mode: core.Community, System: s, NumRedirectors: 4})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 4,
		Servers: []ServerSpec{
			{Owner: a, Capacity: 160, Count: 2},
			{Owner: b, Capacity: 160, Count: 2},
		},
		Names: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	plane, err := sm.EnableControlPlane(2)
	if err != nil {
		t.Fatal(err)
	}
	sm.NewClient(0, workload.Config{Principal: int(a), Rate: 400}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(b), Rate: 400}).SetActive(true)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			lb := 0.25
			if i%2 == 1 {
				lb = 0.5
			}
			if _, err := plane.SetAgreement("B", "A", lb, lb); err != nil {
				t.Error(err)
				return
			}
			if _, err := eng.UpdateSystem(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	sm.Run(20 * time.Second)
	<-done
	if plane.Version() == 0 {
		t.Fatal("no mutation landed")
	}
}
