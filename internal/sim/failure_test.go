package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/combining"
	"repro/internal/core"
	"repro/internal/workload"
)

// failureRig builds a 3-redirector provider deployment with failure
// detection enabled.
func failureRig(t *testing.T) (*Sim, agreement.Principal, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 100)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.7, 1)
	s.MustSetAgreement(sp, b, 0.3, 1)
	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := New(Config{
		Engine:         eng,
		Redirectors:    3,
		Servers:        []ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
		FailureTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sm, a, b
}

func TestLeafFailureReconfigures(t *testing.T) {
	sm, a, b := failureRig(t)
	sm.NewClient(0, workload.Config{Principal: int(a), Rate: 200}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(b), Rate: 200}).SetActive(true)
	// Client on the doomed redirector 2.
	c2 := sm.NewClient(2, workload.Config{Principal: int(b), Rate: 50})
	c2.SetActive(true)

	sm.Run(20 * time.Second)
	sm.FailRedirector(2)
	sm.Run(40 * time.Second)

	if sm.Reconfigurations == 0 {
		t.Fatal("failure never detected")
	}
	// The surviving tree must have exactly two members.
	g, _, ok := sm.Redirectors[0].Tree.Global()
	if !ok || g.Count != 2 {
		t.Fatalf("surviving aggregate count = %d (ok=%v), want 2", g.Count, ok)
	}
	// Enforcement continues among survivors: A 70/s, B 30/s.
	rateA := sm.Recorder.MeanRateBetween(int(a), 30*time.Second, 39*time.Second)
	rateB := sm.Recorder.MeanRateBetween(int(b), 30*time.Second, 39*time.Second)
	if math.Abs(rateA-70) > 6 || math.Abs(rateB-30) > 6 {
		t.Fatalf("post-failure rates = %.1f/%.1f, want ≈70/30", rateA, rateB)
	}
}

func TestRootFailurePromotesNewRoot(t *testing.T) {
	sm, a, _ := failureRig(t)
	sm.NewClient(1, workload.Config{Principal: int(a), Rate: 150}).SetActive(true)
	sm.Run(20 * time.Second)

	if !sm.Redirectors[0].Tree.IsRoot() {
		t.Fatal("node 0 should start as root")
	}
	sm.FailRedirector(0)
	sm.Run(45 * time.Second)

	if sm.Reconfigurations == 0 {
		t.Fatal("root failure never detected")
	}
	var newRoot *combining.Node
	for i := 1; i < 3; i++ {
		if sm.Redirectors[i].Tree.IsRoot() {
			newRoot = sm.Redirectors[i].Tree
		}
	}
	if newRoot == nil {
		t.Fatal("no new root emerged")
	}
	// Broadcasts flow again: the new root's global view is fresh.
	_, at, ok := newRoot.Global()
	if !ok || at < 40*time.Second {
		t.Fatalf("new root global stale: at=%v ok=%v", at, ok)
	}
	// Enforcement still works for A through the surviving redirector: with
	// no competing demand A absorbs its full [0.7, 1.0] upper bound.
	rateA := sm.Recorder.MeanRateBetween(int(a), 35*time.Second, 44*time.Second)
	if math.Abs(rateA-100) > 8 {
		t.Fatalf("post-root-failure A = %.1f, want ≈100", rateA)
	}
}

func TestFailedRedirectorRefusesClients(t *testing.T) {
	sm, a, _ := failureRig(t)
	c := sm.NewClient(2, workload.Config{Principal: int(a), Rate: 100})
	c.SetActive(true)
	sm.Run(10 * time.Second)
	served := sm.Recorder.MeanRateBetween(int(a), 5*time.Second, 9*time.Second)
	if served < 50 {
		t.Fatalf("pre-failure rate = %.1f", served)
	}
	sm.FailRedirector(2)
	sm.Run(25 * time.Second)
	post := sm.Recorder.MeanRateBetween(int(a), 20*time.Second, 24*time.Second)
	if post > 5 {
		t.Fatalf("clients of a dead redirector still served at %.1f req/s", post)
	}
}

func TestFailRedirectorBounds(t *testing.T) {
	sm, _, _ := failureRig(t)
	sm.FailRedirector(-1) // no-op
	sm.FailRedirector(99) // no-op
	sm.Run(time.Second)
	if sm.Reconfigurations != 0 {
		t.Fatal("phantom reconfiguration")
	}
}
