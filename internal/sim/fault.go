// Fault injection for the simulation: crash and restore backend servers,
// cut and heal tree links, spike link latency — all on the virtual clock, so
// a chaos run is exactly reproducible from its fault.Schedule seed.
package sim

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/simnet"
)

// EnableCapacityReinterpretation arms the paper's §2.2 dynamic capacity
// model for fault injection: when a server crashes (CrashServer), its
// owner's effective capacity shrinks proportionally and the engine
// recomputes every entitlement against the new level; a restore reverses
// it. Call before Run. The returned re-interpreter exposes degraded /
// recovered transition counters for assertions.
func (s *Sim) EnableCapacityReinterpretation() *health.Reinterpreter {
	if s.reint == nil {
		s.reint = health.NewReinterpreter(s.Engine, s.owners)
	}
	return s.reint
}

// CrashServer takes the named server (e.g. "S-srv1", see ServerSpec naming)
// out of service: it accepts no new requests, though already-queued work
// drains. With EnableCapacityReinterpretation armed, the owner's capacity is
// re-interpreted downward.
func (s *Sim) CrashServer(name string) error {
	if _, ok := s.byName[name]; !ok {
		return fmt.Errorf("%w: unknown server %q", ErrConfig, name)
	}
	if s.crashed[name] {
		return nil
	}
	s.crashed[name] = true
	if s.reint != nil {
		return s.reint.SetBackendDown(name, true)
	}
	return nil
}

// RestoreServer returns a crashed server to service at its original
// capacity (undoing any SlowServer scaling) and, with re-interpretation
// armed, restores the owner's capacity share.
func (s *Sim) RestoreServer(name string) error {
	srv, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: unknown server %q", ErrConfig, name)
	}
	if !s.crashed[name] {
		return nil
	}
	delete(s.crashed, name)
	srv.SetCapacity(s.baseCap[name])
	if s.reint != nil {
		return s.reint.SetBackendDown(name, false)
	}
	return nil
}

// SlowServer scales the named server's service rate to factor × its base
// capacity (0 < factor). The agreement layer keeps its static
// interpretation — requests simply take longer — matching a degraded but
// not dead machine.
func (s *Sim) SlowServer(name string, factor float64) error {
	srv, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: unknown server %q", ErrConfig, name)
	}
	if factor <= 0 {
		return fmt.Errorf("%w: slow factor %v for %q", ErrConfig, factor, name)
	}
	srv.SetCapacity(s.baseCap[name] * factor)
	return nil
}

// InjectFaults replays the plan on the simulation's virtual clock: backend
// events crash/restore named servers, partition/heal events cut simnet tree
// links both ways, latency events reset one-way link delay, slow events
// rescale server capacity. The extra hooks (zero value is fine) run after
// the built-in handling of each event, for test-side assertions. Unknown
// server names panic — a fault plan that misses its target is a test bug,
// not a tolerable fault.
func (s *Sim) InjectFaults(plan *fault.Schedule, extra fault.Hooks) {
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("sim: fault injection: %v", err))
		}
	}
	h := fault.Hooks{
		BackendDown: func(target string) {
			must(s.CrashServer(target))
			if extra.BackendDown != nil {
				extra.BackendDown(target)
			}
		},
		BackendUp: func(target string) {
			must(s.RestoreServer(target))
			if extra.BackendUp != nil {
				extra.BackendUp(target)
			}
		},
		Partition: func(a, b int) {
			s.Net.SetPartitioned(simnet.NodeID(a), simnet.NodeID(b), true)
			if extra.Partition != nil {
				extra.Partition(a, b)
			}
		},
		Heal: func(a, b int) {
			s.Net.SetPartitioned(simnet.NodeID(a), simnet.NodeID(b), false)
			if extra.Heal != nil {
				extra.Heal(a, b)
			}
		},
		Latency: func(a, b int, d time.Duration) {
			s.Net.SetDelay(simnet.NodeID(a), simnet.NodeID(b), d)
			if extra.Latency != nil {
				extra.Latency(a, b, d)
			}
		},
		SlowBackend: func(target string, factor float64) {
			must(s.SlowServer(target, factor))
			if extra.SlowBackend != nil {
				extra.SlowBackend(target, factor)
			}
		},
		RedirectorDown: func(a int) {
			s.CrashRedirector(a)
			if extra.RedirectorDown != nil {
				extra.RedirectorDown(a)
			}
		},
		RedirectorUp: func(a int) {
			s.RestartRedirector(a)
			if extra.RedirectorUp != nil {
				extra.RedirectorUp(a)
			}
		},
	}
	plan.Apply(h, func(at time.Duration, fn func()) { s.At(at, fn) })
}
