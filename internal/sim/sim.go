// Package sim wires the enforcement engine, combining tree, simulated
// servers and synthetic clients together over virtual time. It is the
// harness behind every figure reproduction: the paper's multi-minute testbed
// runs execute deterministically in milliseconds.
//
// Topology mirrors Figure 4: clients submit requests to redirector nodes;
// each redirector runs a core.Redirector (window credits from the LP) and a
// combining.Node (global queue aggregation); admitted requests go to the
// least-loaded server of the owner the scheduler chose; completions are
// recorded per principal per second.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/agreement"
	"repro/internal/cluster"
	"repro/internal/combining"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// ErrConfig reports invalid simulation configuration.
var ErrConfig = errors.New("sim: invalid config")

// ServerSpec places Count physical servers of the given capacity (req/s)
// under an owner principal.
type ServerSpec struct {
	Owner    agreement.Principal
	Capacity float64
	Count    int
}

// Config parameterizes a simulation.
type Config struct {
	Engine      *core.Engine
	Redirectors int
	Servers     []ServerSpec
	// TreeDelay is the one-way message delay on every combining-tree link
	// (Figure 8 uses 10 s).
	TreeDelay time.Duration
	// TreeFanout is the combining-tree fan-out (default 2).
	TreeFanout int
	// Names labels the recorder series; defaults to P0, P1, ...
	Names []string
	// MaxBacklog bounds each server's queue (default 5000).
	MaxBacklog int
	// FailureTimeout, when positive, enables failure detection: a tree
	// neighbor not heard from for this long is removed from the topology
	// and its children are re-parented (the "dynamic" in the paper's
	// dynamic combining tree). Must exceed the tree delay plus a few
	// epochs to avoid false positives.
	FailureTimeout time.Duration
	// MeanRequestBytes, when positive, turns on size-aware scheduling:
	// each request is charged Size/MeanRequestBytes credits and consumes
	// the same multiple of server capacity — the paper's "large requests
	// are treated as multiple small ones". Zero keeps the uniform-cost
	// model used by the figure reproductions (WebBench reports averages).
	MeanRequestBytes float64
	// WindowWorkers bounds the goroutines running per-redirector window
	// solves concurrently at each window boundary (0 means GOMAXPROCS).
	// When redirectors disagree on the global aggregate — staleness, lag,
	// or self-inclusion — their distinct LP solves run in parallel; when
	// they agree, the engine's plan cache already collapses them to one
	// solve and the workers just perform lookups. Set 1 to force the
	// serial behavior.
	WindowWorkers int
	// TraceDepth enables window tracing: every redirector gets an observer
	// retaining this many trace records, all folding into one shared
	// Auditor. Zero disables tracing (the seed behavior); negative selects
	// obs.DefaultRingDepth.
	TraceDepth int
}

// Sim is a running simulation.
type Sim struct {
	Clock    *vclock.Clock
	Engine   *core.Engine
	Net      *simnet.Network
	Recorder *metrics.Recorder // completed requests per principal
	Admit    *metrics.Recorder // admitted requests per principal
	Latency  *metrics.Latency  // response times (first issue → completion)

	Redirectors []*RNode
	Servers     map[agreement.Principal][]*cluster.Server

	// Auditor aggregates SLA conformance across all redirectors when
	// Config.TraceDepth enables tracing (nil otherwise). Observers holds the
	// per-redirector trace rings in redirector order.
	Auditor   *obs.Auditor
	Observers []*obs.Observer

	topo           combining.Topology
	failed         map[int]bool
	failureTimeout time.Duration
	lastReconfig   time.Duration
	meanBytes      float64
	windowWorkers  int
	windowTicker   *vclock.Ticker

	// Fault-injection state (see fault.go in this package): servers by
	// name, their owners and base capacities, which are currently crashed,
	// and the optional capacity re-interpreter driven by crashes.
	byName  map[string]*cluster.Server
	owners  map[string]agreement.Principal
	baseCap map[string]float64
	crashed map[string]bool
	reint   *health.Reinterpreter

	// Reconfigurations counts topology rebuilds triggered by failure
	// detection.
	Reconfigurations int
}

// RNode is one redirector node: admission engine + tree participant. It
// implements workload.Sink.
type RNode struct {
	sim    *Sim
	Red    *core.Redirector
	Tree   *combining.Node
	estBuf []float64 // reused local-estimate buffer for the tree feed
}

// New builds a simulation. The engine's window drives both scheduling and
// tree epochs.
func New(cfg Config) (*Sim, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("%w: nil engine", ErrConfig)
	}
	if cfg.Redirectors <= 0 {
		return nil, fmt.Errorf("%w: need at least one redirector", ErrConfig)
	}
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("%w: need at least one server", ErrConfig)
	}
	if cfg.TreeFanout < 2 {
		cfg.TreeFanout = 2
	}
	if cfg.MaxBacklog <= 0 {
		cfg.MaxBacklog = 5000
	}
	n := cfg.Engine.NumPrincipals()
	names := cfg.Names
	if names == nil {
		names = make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("P%d", i)
		}
	}
	if len(names) != n {
		return nil, fmt.Errorf("%w: %d names for %d principals", ErrConfig, len(names), n)
	}

	s := &Sim{
		Clock:          vclock.New(),
		Engine:         cfg.Engine,
		Recorder:       metrics.NewRecorder(time.Second, names),
		Admit:          metrics.NewRecorder(time.Second, names),
		Latency:        metrics.NewLatency(names),
		Servers:        make(map[agreement.Principal][]*cluster.Server),
		failed:         make(map[int]bool),
		failureTimeout: cfg.FailureTimeout,
		meanBytes:      cfg.MeanRequestBytes,
		byName:         make(map[string]*cluster.Server),
		owners:         make(map[string]agreement.Principal),
		baseCap:        make(map[string]float64),
		crashed:        make(map[string]bool),
	}
	s.Net = simnet.New(s.Clock, cfg.TreeDelay)

	for _, spec := range cfg.Servers {
		if spec.Capacity <= 0 || spec.Count <= 0 {
			return nil, fmt.Errorf("%w: server spec %+v", ErrConfig, spec)
		}
		for c := 0; c < spec.Count; c++ {
			name := fmt.Sprintf("%s-srv%d", names[spec.Owner], c)
			srv := cluster.NewServer(name, s.Clock, spec.Capacity, cfg.MaxBacklog,
				func(req cluster.Request, at time.Duration) {
					s.Recorder.Add(at, req.Principal, 1)
					s.Latency.Observe(req.Principal, at-req.IssuedAt)
				})
			s.Servers[spec.Owner] = append(s.Servers[spec.Owner], srv)
			s.byName[name] = srv
			s.owners[name] = spec.Owner
			s.baseCap[name] = spec.Capacity
		}
	}

	ids := make([]combining.NodeID, cfg.Redirectors)
	for i := range ids {
		ids[i] = combining.NodeID(i)
	}
	topo := combining.BuildTree(ids, cfg.TreeFanout)
	s.topo = topo
	for i := 0; i < cfg.Redirectors; i++ {
		id := combining.NodeID(i)
		send := func(to combining.NodeID, msg interface{}) {
			s.Net.Send(simnet.NodeID(id), simnet.NodeID(to), msg)
		}
		rn := &RNode{
			sim: s,
			Red: cfg.Engine.NewRedirector(i),
		}
		rn.Tree = combining.NewNode(id, topo.Parent[id], topo.Children[id], n, send, s.Clock.Now)
		s.Redirectors = append(s.Redirectors, rn)
		s.Net.Handle(simnet.NodeID(id), func(from simnet.NodeID, msg interface{}) {
			if s.failed[int(id)] {
				return // a dead node processes nothing
			}
			rn.Tree.OnMessage(combining.NodeID(from), msg)
			if _, ok := msg.(combining.Broadcast); ok {
				rn.pushGlobal()
			}
		})
	}

	if cfg.TraceDepth != 0 {
		depth := cfg.TraceDepth
		if depth < 0 {
			depth = obs.DefaultRingDepth
		}
		s.Auditor = obs.NewAuditor(names)
		for i, rn := range s.Redirectors {
			o := cfg.Engine.NewObserver(i, s.Auditor, depth)
			tree := rn.Tree
			o.SetTreeInfo(func() obs.TreeInfo {
				reports, broadcasts, sent := tree.MessageCounts()
				return obs.TreeInfo{
					Epoch:       tree.Epoch(),
					GlobalEpoch: tree.GlobalEpoch(),
					MsgsIn:      reports + broadcasts,
					MsgsOut:     sent,
				}
			})
			rn.Red.SetObserver(o)
			s.Observers = append(s.Observers, o)
		}
	}

	s.windowWorkers = cfg.WindowWorkers
	if s.windowWorkers <= 0 {
		s.windowWorkers = runtime.GOMAXPROCS(0)
	}

	// Window driver: refresh tree locals, run a tree epoch, then start the
	// new scheduling window once same-instant deliveries have drained.
	s.windowTicker = s.Clock.ScheduleEvery(cfg.Engine.Window(), func() {
		if s.failureTimeout > 0 {
			s.detectFailures()
		}
		for i, rn := range s.Redirectors {
			if s.failed[i] {
				continue
			}
			rn.estBuf = rn.Red.LocalEstimateInto(rn.estBuf)
			rn.Tree.SetLocal(rn.estBuf)
		}
		for i, rn := range s.Redirectors {
			if s.failed[i] {
				continue
			}
			rn.Tree.Tick()
		}
		s.Clock.Schedule(0, func() { s.startWindows() })
	})
	return s, nil
}

// startWindows runs every live redirector's window solve, fanning the solves
// out over a bounded worker pool. The engine's shared plan cache collapses
// redirectors that agree on the (quantized) global aggregate into one LP
// solve, so the workers mostly do cache lookups; when views diverge, distinct
// solves proceed concurrently. Virtual time is frozen while this callback
// runs, so one timestamp serves every redirector.
func (s *Sim) startWindows() {
	now := s.Clock.Now()
	live := make([]*RNode, 0, len(s.Redirectors))
	for i, rn := range s.Redirectors {
		if !s.failed[i] {
			live = append(live, rn)
		}
	}
	startOne := func(rn *RNode) error {
		if rn.Tree.IsRoot() {
			rn.pushGlobal() // root sees its own broadcast instantly
		}
		// Feed the redirector its rollout view before the window starts:
		// its epoch (local ticks, advanced in lockstep fleet-wide) and the
		// newest configuration version the tree has delivered to it. The
		// engine's epoch gate decides whether this window runs the old
		// generation, the staged one, or the conservative fallback.
		epoch := rn.Tree.Epoch()
		if ge := rn.Tree.GlobalEpoch(); ge > epoch {
			epoch = ge
		}
		var known uint64
		if cu := rn.Tree.Config(); cu != nil {
			known = cu.Version
		}
		rn.Red.SetRollout(epoch, known)
		return rn.Red.StartWindow(now)
	}
	workers := s.windowWorkers
	if workers > len(live) {
		workers = len(live)
	}
	if workers <= 1 || len(live) <= 1 {
		for _, rn := range live {
			if err := startOne(rn); err != nil {
				panic(fmt.Sprintf("sim: window schedule failed: %v", err))
			}
		}
		return
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	work := make(chan *RNode)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rn := range work {
				if err := startOne(rn); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for _, rn := range live {
		work <- rn
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		panic(fmt.Sprintf("sim: window schedule failed: %v", firstErr))
	}
}

// EnableControlPlane attaches a dynamic agreement control plane to the
// simulation, rooted (like the paper's combining tree) at the tree root.
// Accepted mutations are staged on the shared engine behind an epoch gate
// of the root's current epoch plus lead (<=0 selects ctrlplane.DefaultLead)
// and piggybacked on the root's downward broadcasts, so every redirector
// learns the new agreement-set version through the tree before its gate
// epoch arrives and swaps at a window boundary.
func (s *Sim) EnableControlPlane(lead int) (*ctrlplane.Plane, error) {
	var root *RNode
	for i, rn := range s.Redirectors {
		if !s.failed[i] && rn.Tree.IsRoot() {
			root = rn
			break
		}
	}
	if root == nil {
		return nil, fmt.Errorf("%w: no live tree root", ErrConfig)
	}
	tree := root.Tree
	return ctrlplane.New(s.Engine.System(), s.Engine, ctrlplane.Options{
		Lead:  lead,
		Epoch: tree.Epoch,
		Publish: func(set *agreement.Set, gate int) {
			data, err := set.Encode()
			if err != nil {
				panic(fmt.Sprintf("sim: encode agreement set v%d: %v", set.Version, err))
			}
			tree.SetConfig(&combining.ConfigUpdate{
				Version:   set.Version,
				GateEpoch: gate,
				Payload:   data,
			})
		},
	})
}

// FailRedirector kills redirector i: it stops participating in the tree
// and refuses all client submissions. With FailureTimeout set, survivors
// detect the silence and rebuild the tree around it.
func (s *Sim) FailRedirector(i int) {
	if i >= 0 && i < len(s.Redirectors) {
		s.failed[i] = true
	}
}

// liveNodes returns the tree nodes of non-failed redirectors.
func (s *Sim) liveNodes() map[combining.NodeID]*combining.Node {
	out := make(map[combining.NodeID]*combining.Node, len(s.Redirectors))
	for i, rn := range s.Redirectors {
		if !s.failed[i] {
			out[combining.NodeID(i)] = rn.Tree
		}
	}
	return out
}

// detectFailures removes tree members whose neighbors have observed
// silence longer than the failure timeout. Detection uses only what live
// nodes locally observed: parents miss child reports, children miss parent
// broadcasts.
func (s *Sim) detectFailures() {
	now := s.Clock.Now()
	if now-s.lastReconfig < s.failureTimeout {
		return // grace period after startup or a rebuild: new edges are quiet
	}
	suspect := -1
	for i, rn := range s.Redirectors {
		if s.failed[i] {
			continue
		}
		id := combining.NodeID(i)
		for _, child := range s.topo.Children[id] {
			lh, heard := rn.Tree.LastHeard(child)
			if !heard || now-lh > s.failureTimeout {
				suspect = int(child)
			}
		}
		if p := s.topo.Parent[id]; p >= 0 {
			lh, heard := rn.Tree.LastHeard(p)
			if !heard || now-lh > s.failureTimeout {
				suspect = int(p)
			}
		}
	}
	if suspect < 0 {
		return
	}
	if _, present := s.topo.Parent[combining.NodeID(suspect)]; !present {
		return // already removed
	}
	s.topo = s.topo.RemoveNode(combining.NodeID(suspect))
	s.topo.Apply(s.liveNodes())
	s.lastReconfig = now
	s.Reconfigurations++
}

func (rn *RNode) pushGlobal() {
	agg, at, ok := rn.Tree.Global()
	if ok {
		rn.Red.SetGlobal(agg.Sum, at)
	}
}

// Submit implements workload.Sink: admit the request and forward it to the
// least-loaded server of the chosen owner. A refused offer (full backlog)
// counts as a denial so the client retries.
func (rn *RNode) Submit(req workload.Request) bool {
	if rn.sim.failed[rn.Red.ID()] {
		return false // dead redirector: connection refused
	}
	cost := 1.0
	if rn.sim.meanBytes > 0 && req.Size > 0 {
		cost = float64(req.Size) / rn.sim.meanBytes
	}
	d := rn.Red.AdmitCost(agreement.Principal(req.Principal), -1, cost)
	if !d.Admitted {
		return false
	}
	srv := rn.sim.pickServer(d.Owner)
	if srv == nil {
		return false
	}
	if !srv.Offer(cluster.Request{
		Principal: req.Principal,
		ID:        req.ID,
		Cost:      cost,
		IssuedAt:  req.IssuedAt,
	}) {
		return false
	}
	rn.sim.Admit.Add(rn.sim.Clock.Now(), req.Principal, 1)
	return true
}

// pickServer chooses the owner's least-backlogged live server (crashed
// servers — see CrashServer — take no new work).
func (s *Sim) pickServer(owner agreement.Principal) *cluster.Server {
	servers := s.Servers[owner]
	var best *cluster.Server
	for _, srv := range servers {
		if s.crashed[srv.Name()] {
			continue
		}
		if best == nil || srv.QueueLen() < best.QueueLen() {
			best = srv
		}
	}
	return best
}

// NewClient attaches a client machine to redirector ri.
func (s *Sim) NewClient(ri int, cfg workload.Config) *workload.Client {
	return workload.NewClient(s.Clock, s.Redirectors[ri], cfg)
}

// ScheduleStats counts the outcome of an open-loop replay (see
// PlaySchedule). Counters advance as virtual time does; read them after
// Run.
type ScheduleStats struct {
	Submitted int
	Admitted  int
	Denied    int
}

// PlaySchedule replays a precomputed open-loop arrival schedule against
// redirector ri: one submission per offset in times (absolute virtual
// time), no retries. This is the virtual-time twin of the loadgen
// generator's open-loop contract — an arrival that is turned away is
// counted and dropped, never rescheduled — so a schedule expanded from a
// seeded loadgen stream replays bit-identically here.
func (s *Sim) PlaySchedule(ri, principal int, times []time.Duration) *ScheduleStats {
	st := &ScheduleStats{}
	sink := s.Redirectors[ri]
	for i, at := range times {
		id := uint64(i)
		s.Clock.Schedule(at-s.Clock.Now(), func() {
			st.Submitted++
			if sink.Submit(workload.Request{
				Principal: principal,
				ID:        id,
				IssuedAt:  s.Clock.Now(),
			}) {
				st.Admitted++
			} else {
				st.Denied++
			}
		})
	}
	return st
}

// At schedules fn at absolute virtual time d (phase switches).
func (s *Sim) At(d time.Duration, fn func()) {
	s.Clock.Schedule(d-s.Clock.Now(), fn)
}

// Run advances the simulation until absolute virtual time end.
func (s *Sim) Run(end time.Duration) { s.Clock.RunUntil(end) }

// Stop halts the window driver (for tests that re-wire mid-run).
func (s *Sim) Stop() { s.windowTicker.Stop() }

// SetTreeDelay changes the delay on every tree link (before or during a
// run).
func (s *Sim) SetTreeDelay(d time.Duration) {
	for i := range s.Redirectors {
		for j := range s.Redirectors {
			if i != j {
				s.Net.SetDelay(simnet.NodeID(i), simnet.NodeID(j), d)
			}
		}
	}
}
