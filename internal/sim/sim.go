// Package sim wires the enforcement engine, combining tree, simulated
// servers and synthetic clients together over virtual time. It is the
// harness behind every figure reproduction: the paper's multi-minute testbed
// runs execute deterministically in milliseconds.
//
// Topology mirrors Figure 4: clients submit requests to redirector nodes;
// each redirector runs a core.Redirector (window credits from the LP) and a
// combining.Node (global queue aggregation); admitted requests go to the
// least-loaded server of the owner the scheduler chose; completions are
// recorded per principal per second.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/agreement"
	"repro/internal/budget"
	"repro/internal/cluster"
	"repro/internal/combining"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// ErrConfig reports invalid simulation configuration.
var ErrConfig = errors.New("sim: invalid config")

// ServerSpec places Count physical servers of the given capacity (req/s)
// under an owner principal.
type ServerSpec struct {
	Owner    agreement.Principal
	Capacity float64
	Count    int
}

// Config parameterizes a simulation.
type Config struct {
	Engine      *core.Engine
	Redirectors int
	Servers     []ServerSpec
	// TreeDelay is the one-way message delay on every combining-tree link
	// (Figure 8 uses 10 s).
	TreeDelay time.Duration
	// TreeFanout is the combining-tree fan-out (default 2).
	TreeFanout int
	// Topology, when set, lays the redirectors out hierarchically (regional
	// sub-trees under a global tier; see internal/topology) instead of the
	// flat BuildTree layout. Its members must be exactly 0..Redirectors-1.
	// Failure detection and restarts recompile the plane, so a dead
	// regional sub-root re-parents its region into the global tier.
	Topology *topology.Spec
	// Names labels the recorder series; defaults to P0, P1, ...
	Names []string
	// MaxBacklog bounds each server's queue (default 5000).
	MaxBacklog int
	// FailureTimeout, when positive, enables failure detection: a tree
	// neighbor not heard from for this long is removed from the topology
	// and its children are re-parented (the "dynamic" in the paper's
	// dynamic combining tree). Must exceed the tree delay plus a few
	// epochs to avoid false positives.
	FailureTimeout time.Duration
	// MeanRequestBytes, when positive, turns on size-aware scheduling:
	// each request is charged Size/MeanRequestBytes credits and consumes
	// the same multiple of server capacity — the paper's "large requests
	// are treated as multiple small ones". Zero keeps the uniform-cost
	// model used by the figure reproductions (WebBench reports averages).
	MeanRequestBytes float64
	// WindowWorkers bounds the goroutines running per-redirector window
	// solves concurrently at each window boundary (0 means GOMAXPROCS).
	// When redirectors disagree on the global aggregate — staleness, lag,
	// or self-inclusion — their distinct LP solves run in parallel; when
	// they agree, the engine's plan cache already collapses them to one
	// solve and the workers just perform lookups. Set 1 to force the
	// serial behavior.
	WindowWorkers int
	// TraceDepth enables window tracing: every redirector gets an observer
	// retaining this many trace records, all folding into one shared
	// Auditor. Zero disables tracing (the seed behavior); negative selects
	// obs.DefaultRingDepth.
	TraceDepth int
}

// Sim is a running simulation.
type Sim struct {
	Clock    *vclock.Clock
	Engine   *core.Engine
	Net      *simnet.Network
	Recorder *metrics.Recorder // completed requests per principal
	Admit    *metrics.Recorder // admitted requests per principal
	Latency  *metrics.Latency  // response times (first issue → completion)

	Redirectors []*RNode
	Servers     map[agreement.Principal][]*cluster.Server

	// Auditor aggregates SLA conformance across all redirectors when
	// Config.TraceDepth enables tracing (nil otherwise). Observers holds the
	// per-redirector trace rings in redirector order.
	Auditor   *obs.Auditor
	Observers []*obs.Observer

	topo           combining.Topology
	plane          *topology.Plane // nil on the flat layout
	fanout         int
	failed         map[int]bool
	failureTimeout time.Duration
	lastReconfig   time.Duration
	meanBytes      float64
	windowWorkers  int
	windowTicker   *vclock.Ticker

	// Durable-state plane (EnablePersistence): one persist.Store per
	// redirector, written every persistEvery windows; rootStore is also fed
	// agreement-set snapshots at publish time so a restarted root can
	// re-broadcast the newest configuration.
	stores       map[int]*persist.Store
	persistEvery int

	// Fault-injection state (see fault.go in this package): servers by
	// name, their owners and base capacities, which are currently crashed,
	// and the optional capacity re-interpreter driven by crashes.
	byName  map[string]*cluster.Server
	owners  map[string]agreement.Principal
	baseCap map[string]float64
	crashed map[string]bool
	reint   *health.Reinterpreter

	// Reconfigurations counts topology rebuilds triggered by failure
	// detection.
	Reconfigurations int
}

// RNode is one redirector node: admission engine + tree participant. It
// implements workload.Sink.
type RNode struct {
	sim    *Sim
	Red    *core.Redirector
	Tree   *combining.Node
	estBuf []float64 // reused local-estimate buffer for the tree feed

	// Persistence scratch (EnablePersistence): reused export buffers, the
	// newest set version already saved durably, and the window countdown to
	// the next append. Touched only by the goroutine running this node's
	// window (startOne) — never shared.
	pm           [][]float64
	pt           []float64
	pe           []float64
	savedSet     uint64
	sinceAppend  int
	lastSeenGate int
}

// New builds a simulation. The engine's window drives both scheduling and
// tree epochs.
func New(cfg Config) (*Sim, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("%w: nil engine", ErrConfig)
	}
	if cfg.Redirectors <= 0 {
		return nil, fmt.Errorf("%w: need at least one redirector", ErrConfig)
	}
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("%w: need at least one server", ErrConfig)
	}
	if cfg.TreeFanout < 2 {
		cfg.TreeFanout = 2
	}
	if cfg.MaxBacklog <= 0 {
		cfg.MaxBacklog = 5000
	}
	n := cfg.Engine.NumPrincipals()
	names := cfg.Names
	if names == nil {
		names = make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("P%d", i)
		}
	}
	if len(names) != n {
		return nil, fmt.Errorf("%w: %d names for %d principals", ErrConfig, len(names), n)
	}

	s := &Sim{
		Clock:          vclock.New(),
		Engine:         cfg.Engine,
		Recorder:       metrics.NewRecorder(time.Second, names),
		Admit:          metrics.NewRecorder(time.Second, names),
		Latency:        metrics.NewLatency(names),
		Servers:        make(map[agreement.Principal][]*cluster.Server),
		failed:         make(map[int]bool),
		failureTimeout: cfg.FailureTimeout,
		meanBytes:      cfg.MeanRequestBytes,
		byName:         make(map[string]*cluster.Server),
		owners:         make(map[string]agreement.Principal),
		baseCap:        make(map[string]float64),
		crashed:        make(map[string]bool),
	}
	s.Net = simnet.New(s.Clock, cfg.TreeDelay)

	for _, spec := range cfg.Servers {
		if spec.Capacity <= 0 || spec.Count <= 0 {
			return nil, fmt.Errorf("%w: server spec %+v", ErrConfig, spec)
		}
		for c := 0; c < spec.Count; c++ {
			name := fmt.Sprintf("%s-srv%d", names[spec.Owner], c)
			srv := cluster.NewServer(name, s.Clock, spec.Capacity, cfg.MaxBacklog,
				func(req cluster.Request, at time.Duration) {
					s.Recorder.Add(at, req.Principal, 1)
					s.Latency.Observe(req.Principal, at-req.IssuedAt)
				})
			s.Servers[spec.Owner] = append(s.Servers[spec.Owner], srv)
			s.byName[name] = srv
			s.owners[name] = spec.Owner
			s.baseCap[name] = spec.Capacity
		}
	}

	ids := make([]combining.NodeID, cfg.Redirectors)
	for i := range ids {
		ids[i] = combining.NodeID(i)
	}
	var topo combining.Topology
	if cfg.Topology != nil {
		plane, perr := topology.Compile(*cfg.Topology)
		if perr != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, perr)
		}
		members := plane.Members()
		if len(members) != cfg.Redirectors {
			return nil, fmt.Errorf("%w: topology has %d members for %d redirectors",
				ErrConfig, len(members), cfg.Redirectors)
		}
		for i, id := range members {
			if int(id) != i {
				return nil, fmt.Errorf("%w: topology members must be 0..%d", ErrConfig, cfg.Redirectors-1)
			}
		}
		s.plane = plane
		topo = plane.Topology()
	} else {
		topo = combining.BuildTree(ids, cfg.TreeFanout)
	}
	s.topo = topo
	s.fanout = cfg.TreeFanout
	for i := 0; i < cfg.Redirectors; i++ {
		id := combining.NodeID(i)
		send := func(to combining.NodeID, msg interface{}) {
			s.Net.Send(simnet.NodeID(id), simnet.NodeID(to), msg)
		}
		rn := &RNode{
			sim: s,
			Red: cfg.Engine.NewRedirector(i),
		}
		rn.Tree = combining.NewBuilder(id).Place(topo).Principals(n).
			Transport(send).Clock(s.Clock.Now).Build()
		s.Redirectors = append(s.Redirectors, rn)
		s.Net.Handle(simnet.NodeID(id), func(from simnet.NodeID, msg interface{}) {
			if s.failed[int(id)] {
				return // a dead node processes nothing
			}
			rn.Tree.OnMessage(combining.NodeID(from), msg)
			if _, ok := msg.(combining.Broadcast); ok {
				rn.pushGlobal()
			}
		})
	}

	if cfg.TraceDepth != 0 {
		depth := cfg.TraceDepth
		if depth < 0 {
			depth = obs.DefaultRingDepth
		}
		s.Auditor = obs.NewAuditor(names)
		for i, rn := range s.Redirectors {
			o := cfg.Engine.NewObserver(i, s.Auditor, depth)
			tree := rn.Tree
			o.SetTreeInfo(func() obs.TreeInfo {
				reports, broadcasts, sent := tree.MessageCounts()
				return obs.TreeInfo{
					Epoch:       tree.Epoch(),
					GlobalEpoch: tree.GlobalEpoch(),
					MsgsIn:      reports + broadcasts,
					MsgsOut:     sent,
				}
			})
			rn.Red.SetObserver(o)
			s.Observers = append(s.Observers, o)
		}
	}

	s.windowWorkers = cfg.WindowWorkers
	if s.windowWorkers <= 0 {
		s.windowWorkers = runtime.GOMAXPROCS(0)
	}

	// Window driver: refresh tree locals, run a tree epoch, then start the
	// new scheduling window once same-instant deliveries have drained.
	s.windowTicker = s.Clock.ScheduleEvery(cfg.Engine.Window(), func() {
		if s.failureTimeout > 0 {
			s.detectFailures()
		}
		for i, rn := range s.Redirectors {
			if s.failed[i] {
				continue
			}
			rn.estBuf = rn.Red.LocalEstimateInto(rn.estBuf)
			rn.Tree.SetLocal(rn.estBuf)
		}
		for i, rn := range s.Redirectors {
			if s.failed[i] {
				continue
			}
			rn.Tree.Tick()
		}
		s.Clock.Schedule(0, func() { s.startWindows() })
	})
	return s, nil
}

// startWindows runs every live redirector's window solve, fanning the solves
// out over a bounded worker pool. The engine's shared plan cache collapses
// redirectors that agree on the (quantized) global aggregate into one LP
// solve, so the workers mostly do cache lookups; when views diverge, distinct
// solves proceed concurrently. Virtual time is frozen while this callback
// runs, so one timestamp serves every redirector.
func (s *Sim) startWindows() {
	now := s.Clock.Now()
	live := make([]*RNode, 0, len(s.Redirectors))
	for i, rn := range s.Redirectors {
		if !s.failed[i] {
			live = append(live, rn)
		}
	}
	startOne := func(rn *RNode) error {
		if rn.Tree.IsRoot() {
			rn.pushGlobal() // root sees its own broadcast instantly
		}
		// Feed the redirector its rollout view before the window starts:
		// its epoch (local ticks, advanced in lockstep fleet-wide) and the
		// newest configuration version the tree has delivered to it. The
		// engine's epoch gate decides whether this window runs the old
		// generation, the staged one, or the conservative fallback.
		epoch := rn.Tree.Epoch()
		if ge := rn.Tree.GlobalEpoch(); ge > epoch {
			epoch = ge
		}
		var known uint64
		gate := 0
		if cu := rn.Tree.Config(); cu != nil {
			known = cu.Version
			gate = cu.GateEpoch
		}
		rn.Red.SetRollout(epoch, known)
		if err := rn.Red.StartWindow(now); err != nil {
			return err
		}
		rn.persistWindow(epoch, known, gate)
		return nil
	}
	workers := s.windowWorkers
	if workers > len(live) {
		workers = len(live)
	}
	if workers <= 1 || len(live) <= 1 {
		for _, rn := range live {
			if err := startOne(rn); err != nil {
				panic(fmt.Sprintf("sim: window schedule failed: %v", err))
			}
		}
		return
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	work := make(chan *RNode)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rn := range work {
				if err := startOne(rn); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for _, rn := range live {
		work <- rn
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		panic(fmt.Sprintf("sim: window schedule failed: %v", firstErr))
	}
}

// EnableControlPlane attaches a dynamic agreement control plane to the
// simulation, rooted (like the paper's combining tree) at the tree root.
// Accepted mutations are staged on the shared engine behind an epoch gate
// of the root's current epoch plus lead (<=0 selects ctrlplane.DefaultLead)
// and piggybacked on the root's downward broadcasts, so every redirector
// learns the new agreement-set version through the tree before its gate
// epoch arrives and swaps at a window boundary.
func (s *Sim) EnableControlPlane(lead int) (*ctrlplane.Plane, error) {
	var root *RNode
	for i, rn := range s.Redirectors {
		if !s.failed[i] && rn.Tree.IsRoot() {
			root = rn
			break
		}
	}
	if root == nil {
		return nil, fmt.Errorf("%w: no live tree root", ErrConfig)
	}
	tree := root.Tree
	opt := ctrlplane.Options{
		Lead:  lead,
		Epoch: tree.Epoch,
		Publish: func(set *agreement.Set, gate int) {
			data, err := set.Encode()
			if err != nil {
				panic(fmt.Sprintf("sim: encode agreement set v%d: %v", set.Version, err))
			}
			tree.SetConfig(&combining.ConfigUpdate{
				Version:   set.Version,
				GateEpoch: gate,
				Payload:   data,
			})
			// The control-plane host persists every accepted set at publish
			// time: a root crash between publish and fleet convergence must
			// not lose the renegotiation.
			if st := s.stores[int(tree.ID())]; st != nil {
				if err := st.SaveSet(set); err != nil {
					panic(fmt.Sprintf("sim: persist set v%d: %v", set.Version, err))
				}
			}
		},
	}
	// Leases ride the same durable store as agreement sets when persistence
	// is armed: the versioned lease table is saved after every mutation and
	// the newest table recovered on a fresh attach, so long-lived leases
	// survive a control-plane restart with at most one mutation lost.
	if st := s.stores[int(tree.ID())]; st != nil {
		opt.SaveLeases = func(t *budget.Table) {
			if err := st.SaveLeases(t); err != nil {
				panic(fmt.Sprintf("sim: persist lease table v%d: %v", t.Version, err))
			}
		}
		tbl, err := st.LoadNewestLeases()
		if err != nil {
			return nil, fmt.Errorf("sim: load lease table: %w", err)
		}
		opt.ResumeLeases = tbl
	}
	return ctrlplane.New(s.Engine.System(), s.Engine, opt)
}

// EnablePersistence arms the durable-state plane: every redirector gets a
// persist.Store rooted at dir/r<id>, appends a window record every
// `every` windows (<=1 means every window — the tightest crash-loss
// bound), and durably saves each agreement-set snapshot it learns of.
// Call before Run; RestartRedirector uses the stores to recover.
func (s *Sim) EnablePersistence(dir string, every int) error {
	if every <= 1 {
		every = 1
	}
	s.stores = make(map[int]*persist.Store, len(s.Redirectors))
	s.persistEvery = every
	for i := range s.Redirectors {
		st, err := persist.Open(fmt.Sprintf("%s/r%d", dir, i))
		if err != nil {
			return err
		}
		s.stores[i] = st
	}
	return nil
}

// persistWindow appends the just-started window's durable record (credit,
// estimate, position) to this node's store, honoring the append cadence,
// and saves any newly learned agreement set. Runs on the goroutine that ran
// the node's window solve; a no-op when persistence is off.
func (rn *RNode) persistWindow(epoch int, known uint64, gate int) {
	st := rn.sim.stores[rn.Red.ID()]
	if st == nil {
		return
	}
	if known > rn.savedSet {
		if cu := rn.Tree.Config(); cu != nil && cu.Version == known {
			set, err := agreement.DecodeSet(cu.Payload)
			if err == nil {
				if err := st.SaveSet(set); err != nil {
					panic(fmt.Sprintf("sim: persist set v%d: %v", known, err))
				}
				rn.savedSet = known
			}
		}
	}
	rn.lastSeenGate = gate
	rn.sinceAppend++
	if rn.sinceAppend < rn.sim.persistEvery {
		return
	}
	rn.sinceAppend = 0
	n := rn.sim.Engine.NumPrincipals()
	if rn.pt == nil {
		rn.pt = make([]float64, n)
		rn.pm = make([][]float64, n)
		for i := range rn.pm {
			rn.pm[i] = make([]float64, n)
		}
	}
	rn.Red.ExportCredits(rn.pm, rn.pt)
	rn.pe = rn.Red.ExportEstimate(rn.pe)
	ws := persist.WindowState{
		WindowSeq:  rn.Red.Windows,
		Epoch:      epoch,
		SetVersion: known,
		Gate:       gate,
		Estimate:   rn.pe,
	}
	if rn.sim.Engine.Mode() == core.Provider {
		ws.CreditTotal = rn.pt
	} else {
		ws.Credit = rn.pm
	}
	if err := st.AppendWindow(ws); err != nil {
		panic(fmt.Sprintf("sim: persist window: %v", err))
	}
}

// FailRedirector kills redirector i: it stops participating in the tree
// and refuses all client submissions. With FailureTimeout set, survivors
// detect the silence and rebuild the tree around it.
func (s *Sim) FailRedirector(i int) {
	if i >= 0 && i < len(s.Redirectors) {
		s.failed[i] = true
	}
}

// CrashRedirector is FailRedirector with kill -9 semantics for the durable
// plane: the process's in-memory window state is gone (RestartRedirector
// rebuilds only from the persist store). In the simulation the two are the
// same transition — in-memory state is simply never consulted again.
func (s *Sim) CrashRedirector(i int) { s.FailRedirector(i) }

// RestartRedirector boots redirector i back up from its durable state, the
// virtual-time twin of a crashed process re-exec'ing: a fresh
// core.Redirector is registered under the old id (re-entering the rollout
// quorum through the laggard conservative path), the window counter, EWMA
// estimate and carried credit are restored from the newest persisted
// record, the tree node is Reset to the durable (epoch, configuration) and
// announces a rejoin to its parent, and — if failure detection had removed
// the node — the topology is deterministically rebuilt to include it
// again. Without EnablePersistence the restart is a cold start.
func (s *Sim) RestartRedirector(i int) {
	if i < 0 || i >= len(s.Redirectors) || !s.failed[i] {
		return
	}
	rn := s.Redirectors[i]
	var ws persist.WindowState
	var set *agreement.Set
	if st := s.stores[i]; st != nil {
		ws, _ = st.LastWindow()
		set, _ = st.LoadNewestSet()
	}
	var cu *combining.ConfigUpdate
	if set != nil {
		payload, err := set.Encode()
		if err != nil {
			panic(fmt.Sprintf("sim: re-encode recovered set v%d: %v", set.Version, err))
		}
		cu = &combining.ConfigUpdate{Version: set.Version, GateEpoch: ws.Gate, Payload: payload}
		// The shared engine survives in the simulation, but a real restart
		// would re-stage the recovered set; StageSet is idempotent at or
		// below the newest accepted version, so this is safe either way.
		if _, err := s.Engine.StageSet(set, 0); err != nil {
			panic(fmt.Sprintf("sim: restage recovered set v%d: %v", set.Version, err))
		}
	}
	// Fresh admission state under the old identity, rehydrated from the
	// durable record: at most the in-flight window's credit is lost.
	rn.Red = s.Engine.NewRedirector(i)
	rn.Red.RestoreState(ws.WindowSeq, ws.Estimate, ws.Credit, ws.CreditTotal)
	rn.Red.SetRollout(ws.Epoch, ws.SetVersion)
	if s.Observers != nil && i < len(s.Observers) {
		rn.Red.SetObserver(s.Observers[i])
	}
	rn.savedSet = ws.SetVersion
	rn.sinceAppend = 0
	s.failed[i] = false
	// Tree node: resume from the durable position in place (transport
	// closures hold the Node pointer), rebuild the topology if failure
	// detection had pruned this member, and shake hands with the parent.
	rn.Tree.Reset(ws.Epoch, cu)
	id := combining.NodeID(i)
	if _, present := s.topo.Parent[id]; !present {
		if s.plane != nil {
			s.plane = s.plane.Restore(id)
			s.topo = s.plane.Topology()
		} else {
			ids := make([]combining.NodeID, 0, len(s.Redirectors))
			for j := range s.Redirectors {
				if !s.failed[j] {
					ids = append(ids, combining.NodeID(j))
				}
			}
			s.topo = combining.BuildTree(ids, s.fanout)
		}
		s.topo.Apply(s.liveNodes())
		s.Reconfigurations++
	} else {
		// Membership unchanged: still re-apply this node's edges so a Reset
		// root re-learns its children.
		rn.Tree.Reconfigure(s.topo.Parent[id], s.topo.Children[id])
	}
	s.lastReconfig = s.Clock.Now() // grace: fresh edges are quiet for a while
	rn.Tree.AnnounceRejoin()
}

// liveNodes returns the tree nodes of non-failed redirectors.
func (s *Sim) liveNodes() map[combining.NodeID]*combining.Node {
	out := make(map[combining.NodeID]*combining.Node, len(s.Redirectors))
	for i, rn := range s.Redirectors {
		if !s.failed[i] {
			out[combining.NodeID(i)] = rn.Tree
		}
	}
	return out
}

// detectFailures removes tree members whose neighbors have observed
// silence longer than the failure timeout. Detection uses only what live
// nodes locally observed: parents miss child reports, children miss parent
// broadcasts.
func (s *Sim) detectFailures() {
	now := s.Clock.Now()
	if now-s.lastReconfig < s.failureTimeout {
		return // grace period after startup or a rebuild: new edges are quiet
	}
	suspect := -1
	for i, rn := range s.Redirectors {
		if s.failed[i] {
			continue
		}
		id := combining.NodeID(i)
		for _, child := range s.topo.Children[id] {
			lh, heard := rn.Tree.LastHeard(child)
			if !heard || now-lh > s.failureTimeout {
				suspect = int(child)
			}
		}
		if p := s.topo.Parent[id]; p >= 0 {
			lh, heard := rn.Tree.LastHeard(p)
			if !heard || now-lh > s.failureTimeout {
				suspect = int(p)
			}
		}
	}
	if suspect < 0 {
		return
	}
	if _, present := s.topo.Parent[combining.NodeID(suspect)]; !present {
		return // already removed
	}
	if s.plane != nil {
		s.plane = s.plane.Remove(combining.NodeID(suspect))
		s.topo = s.plane.Topology()
	} else {
		s.topo = s.topo.RemoveNode(combining.NodeID(suspect))
	}
	s.topo.Apply(s.liveNodes())
	// Rollout liveness valve: a member the tree gave up on cannot
	// acknowledge a staged set, so drop it from the promotion quorum (it is
	// re-admitted by re-registering on restart).
	s.Engine.EvictRedirector(suspect)
	s.lastReconfig = now
	s.Reconfigurations++
}

func (rn *RNode) pushGlobal() {
	agg, at, ok := rn.Tree.Global()
	if ok {
		rn.Red.SetGlobal(agg.Sum, at)
	}
}

// Submit implements workload.Sink: admit the request and forward it to the
// least-loaded server of the chosen owner. A refused offer (full backlog)
// counts as a denial so the client retries.
func (rn *RNode) Submit(req workload.Request) bool {
	if rn.sim.failed[rn.Red.ID()] {
		return false // dead redirector: connection refused
	}
	cost := 1.0
	if rn.sim.meanBytes > 0 && req.Size > 0 {
		cost = float64(req.Size) / rn.sim.meanBytes
	}
	d := rn.Red.AdmitCost(agreement.Principal(req.Principal), -1, cost)
	if !d.Admitted {
		return false
	}
	srv := rn.sim.pickServer(d.Owner)
	if srv == nil {
		return false
	}
	if !srv.Offer(cluster.Request{
		Principal: req.Principal,
		ID:        req.ID,
		Cost:      cost,
		IssuedAt:  req.IssuedAt,
	}) {
		return false
	}
	rn.sim.Admit.Add(rn.sim.Clock.Now(), req.Principal, 1)
	return true
}

// pickServer chooses the owner's least-backlogged live server (crashed
// servers — see CrashServer — take no new work).
func (s *Sim) pickServer(owner agreement.Principal) *cluster.Server {
	servers := s.Servers[owner]
	var best *cluster.Server
	for _, srv := range servers {
		if s.crashed[srv.Name()] {
			continue
		}
		if best == nil || srv.QueueLen() < best.QueueLen() {
			best = srv
		}
	}
	return best
}

// NewClient attaches a client machine to redirector ri.
func (s *Sim) NewClient(ri int, cfg workload.Config) *workload.Client {
	return workload.NewClient(s.Clock, s.Redirectors[ri], cfg)
}

// ScheduleStats counts the outcome of an open-loop replay (see
// PlaySchedule). Counters advance as virtual time does; read them after
// Run.
type ScheduleStats struct {
	Submitted int
	Admitted  int
	Denied    int
}

// PlaySchedule replays a precomputed open-loop arrival schedule against
// redirector ri: one submission per offset in times (absolute virtual
// time), no retries. This is the virtual-time twin of the loadgen
// generator's open-loop contract — an arrival that is turned away is
// counted and dropped, never rescheduled — so a schedule expanded from a
// seeded loadgen stream replays bit-identically here.
func (s *Sim) PlaySchedule(ri, principal int, times []time.Duration) *ScheduleStats {
	st := &ScheduleStats{}
	sink := s.Redirectors[ri]
	for i, at := range times {
		id := uint64(i)
		s.Clock.Schedule(at-s.Clock.Now(), func() {
			st.Submitted++
			if sink.Submit(workload.Request{
				Principal: principal,
				ID:        id,
				IssuedAt:  s.Clock.Now(),
			}) {
				st.Admitted++
			} else {
				st.Denied++
			}
		})
	}
	return st
}

// At schedules fn at absolute virtual time d (phase switches).
func (s *Sim) At(d time.Duration, fn func()) {
	s.Clock.Schedule(d-s.Clock.Now(), fn)
}

// Run advances the simulation until absolute virtual time end.
func (s *Sim) Run(end time.Duration) { s.Clock.RunUntil(end) }

// Stop halts the window driver (for tests that re-wire mid-run).
func (s *Sim) Stop() { s.windowTicker.Stop() }

// ClosePersistence fsyncs and closes every redirector's persist store
// (after Run; the state directories remain replayable).
func (s *Sim) ClosePersistence() error {
	var first error
	for _, st := range s.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Plane returns the current (possibly repaired) hierarchical plane, nil
// when the simulation runs the flat layout.
func (s *Sim) Plane() *topology.Plane { return s.plane }

// SetTreeDelay changes the delay on every tree link (before or during a
// run).
func (s *Sim) SetTreeDelay(d time.Duration) {
	for i := range s.Redirectors {
		for j := range s.Redirectors {
			if i != j {
				s.Net.SetDelay(simnet.NodeID(i), simnet.NodeID(j), d)
			}
		}
	}
}
