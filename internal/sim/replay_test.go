package sim

import (
	"testing"
	"time"

	"repro/internal/loadgen"
)

// playOnce builds a fresh one-redirector sim, replays seeded loadgen
// schedules for principals A and B, and returns the full outcome tuple.
func playOnce(t *testing.T) [6]int {
	t.Helper()
	eng, sp, a, b := testEngine(t, 1)
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 1,
		Servers:     []ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
		Names:       []string{"S", "A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	dur := 20 * time.Second
	schedA := loadgen.Stream{Principal: int(a), Rate: 120, Process: loadgen.Poisson, Seed: 11}.Schedule(dur)
	schedB := loadgen.Stream{Principal: int(b), Rate: 80, Process: loadgen.Bursty, Seed: 12,
		BurstOn: 2 * time.Second, BurstOff: 2 * time.Second}.Schedule(dur)
	stA := sm.PlaySchedule(0, int(a), schedA)
	stB := sm.PlaySchedule(0, int(b), schedB)
	sm.Run(dur + time.Second)
	return [6]int{stA.Submitted, stA.Admitted, stA.Denied,
		stB.Submitted, stB.Admitted, stB.Denied}
}

func TestPlayScheduleDeterministicReplay(t *testing.T) {
	// The loadgen arrival processes replayed over virtual time must yield
	// the exact same admit/deny outcome on every run — schedules are
	// seeded and the simulator itself is deterministic.
	first := playOnce(t)
	if first[0] == 0 || first[3] == 0 {
		t.Fatalf("no submissions: %v", first)
	}
	if first[1] == 0 {
		t.Fatalf("principal A had nothing admitted: %v", first)
	}
	// A at 120/s against a floor of 70: the open-loop stream must see
	// denials once both principals contend (no retries to mask them).
	if first[2] == 0 {
		t.Fatalf("overloaded open-loop stream saw no denials: %v", first)
	}
	for run := 1; run < 3; run++ {
		if again := playOnce(t); again != first {
			t.Fatalf("replay %d diverged: %v vs %v", run, again, first)
		}
	}
}
