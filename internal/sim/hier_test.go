package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/workload"
)

// hierRig builds a 6-redirector two-region provider deployment laid out
// hierarchically (east{0,1,2} and west{3,4,5} sub-trees under a global
// tier) with failure detection enabled.
func hierRig(t *testing.T) (*Sim, agreement.Principal, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 100)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.7, 1)
	s.MustSetAgreement(sp, b, 0.3, 1)
	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := New(Config{
		Engine:      eng,
		Redirectors: 6,
		Servers:     []ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
		Topology: &topology.Spec{
			Regions: []topology.Region{
				{Name: "east", Members: []int{0, 1, 2}},
				{Name: "west", Members: []int{3, 4, 5}},
			},
			Fanout: 2,
		},
		FailureTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sm, a, b
}

// TestHierarchicalLayoutMatchesPlane checks the sim wires redirectors to
// the compiled plane's placements rather than the flat BuildTree layout.
func TestHierarchicalLayoutMatchesPlane(t *testing.T) {
	sm, a, _ := hierRig(t)
	pl := sm.Plane()
	if pl == nil {
		t.Fatal("no plane on a topology config")
	}
	if got := pl.Levels(); got != 3 {
		t.Fatalf("levels = %d, want 3", got)
	}
	subroots := 0
	for _, id := range pl.Members() {
		p, _ := pl.Placement(id)
		if p.SubRoot {
			subroots++
		}
	}
	if subroots != 2 {
		t.Fatalf("sub-roots = %d, want 2", subroots)
	}
	// The plane must actually carry traffic: aggregates settle across
	// regions and enforcement converges.
	sm.NewClient(4, workload.Config{Principal: int(a), Rate: 150}).SetActive(true)
	sm.Run(30 * time.Second)
	g, _, ok := sm.Redirectors[5].Tree.Global()
	if !ok || g.Count != 6 {
		t.Fatalf("west leaf global count = %d (ok=%v), want 6", g.Count, ok)
	}
	rateA := sm.Recorder.MeanRateBetween(int(a), 20*time.Second, 29*time.Second)
	if math.Abs(rateA-100) > 8 {
		t.Fatalf("A = %.1f, want ≈100", rateA)
	}
}

// TestHierSubRootFailureRejoinsGlobalTier kills the west regional
// sub-root: the region's survivors must re-parent through the promoted
// member into the global tier — never sideways to an east leaf — and
// enforcement must keep converging on the survivors.
func TestHierSubRootFailureRejoinsGlobalTier(t *testing.T) {
	sm, a, b := hierRig(t)
	sm.NewClient(1, workload.Config{Principal: int(a), Rate: 200}).SetActive(true)
	sm.NewClient(4, workload.Config{Principal: int(b), Rate: 200}).SetActive(true)
	sm.Run(20 * time.Second)

	if p, _ := sm.Plane().Placement(3); !p.SubRoot {
		t.Fatal("node 3 should start as the west sub-root")
	}
	sm.FailRedirector(3)
	sm.Run(45 * time.Second)

	if sm.Reconfigurations == 0 {
		t.Fatal("sub-root failure never detected")
	}
	pl := sm.Plane()
	if got := pl.Removed(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("removed = %v, want [3]", got)
	}
	p4, ok := pl.Placement(4)
	if !ok || !p4.SubRoot || p4.Parent != 0 {
		t.Fatalf("promoted west sub-root placement = %+v, want sub-root under global root 0", p4)
	}
	p5, _ := pl.Placement(5)
	if p5.Parent != 4 {
		t.Fatalf("west leaf parent = %d, want promoted sub-root 4 (re-parented sideways?)", p5.Parent)
	}
	// Survivors still aggregate all five members and broadcasts stay fresh
	// down in the repaired west region.
	g, at, ok := sm.Redirectors[5].Tree.Global()
	if !ok || g.Count != 5 {
		t.Fatalf("survivor aggregate count = %d (ok=%v), want 5", g.Count, ok)
	}
	if at < 40*time.Second {
		t.Fatalf("west leaf global stale after repair: at=%v", at)
	}
	// Enforcement continues: A 70/s, B 30/s among the survivors.
	rateA := sm.Recorder.MeanRateBetween(int(a), 35*time.Second, 44*time.Second)
	rateB := sm.Recorder.MeanRateBetween(int(b), 35*time.Second, 44*time.Second)
	if math.Abs(rateA-70) > 6 || math.Abs(rateB-30) > 6 {
		t.Fatalf("post-failure rates = %.1f/%.1f, want ≈70/30", rateA, rateB)
	}
}

// TestHierSubRootRestartRestoresPlacement restarts the killed sub-root
// (no durable state: cold rejoin) and checks the plane recompiles back to
// the original placement.
func TestHierSubRootRestartRestoresPlacement(t *testing.T) {
	sm, a, _ := hierRig(t)
	sm.NewClient(1, workload.Config{Principal: int(a), Rate: 150}).SetActive(true)
	sm.Run(20 * time.Second)
	sm.FailRedirector(3)
	sm.Run(40 * time.Second)
	if got := sm.Plane().Removed(); len(got) != 1 {
		t.Fatalf("removed = %v, want [3]", got)
	}
	sm.RestartRedirector(3)
	sm.Run(60 * time.Second)

	pl := sm.Plane()
	if got := pl.Removed(); len(got) != 0 {
		t.Fatalf("removed after restart = %v, want none", got)
	}
	p3, ok := pl.Placement(3)
	if !ok || !p3.SubRoot || p3.Parent != 0 {
		t.Fatalf("restarted node placement = %+v, want west sub-root under 0", p3)
	}
	g, _, ok := sm.Redirectors[0].Tree.Global()
	if !ok || g.Count != 6 {
		t.Fatalf("post-restart aggregate count = %d (ok=%v), want 6", g.Count, ok)
	}
}
