// Package admission is the sharded, contention-free admission layer both
// network data planes sit on. The core window scheduler (core.Redirector)
// stays single-owner and lock-protected, but it only runs once per window;
// this package makes the per-request path — the thing on every client's
// critical path (§2, §4 of the paper) — free of shared mutexes.
//
// The design is credit sharding with work stealing:
//
//   - At each window boundary the freshly scheduled credits are split evenly
//     across GOMAXPROCS-aligned shards. A steady-state admit is one CAS on a
//     cache-line-padded credit cell belonging to the caller's shard.
//   - When a shard's local cell runs dry the admit falls onto a slower
//     refill path that steals credit from sibling shards (taking at least
//     half of the richest sibling cell), so imbalance between shards costs
//     extra CASes, never wrongly rejected requests.
//   - Window swap is an atomic pointer flip: the boundary publishes the next
//     window's credit pool *before* retiring the old one, so in-flight
//     admits never stall on the boundary. Retirement poisons every old cell
//     with a reserved bit pattern, which atomically recovers the exact
//     unused credit for the scheduler's ≤1-request carry.
//   - Arrivals and admissions are counted on per-shard cumulative atomics
//     and folded into the core redirector as one aggregate sample per window
//     (and folded again, without locks, at metrics scrape time).
//
// Conformance note: the carry recovered from a retired pool is applied one
// window late (pool w's leftover funds window w+2), because the new pool
// must be published before the old one can be drained. The carry clamps at
// one request per cell either way, so the auditor's floor/ceiling bounds are
// unaffected; the delay is documented in DESIGN.md §11.
package admission

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
)

// poisonBits is the reserved credit-cell bit pattern meaning "this pool is
// retired". It is a quiet NaN payload no live credit value can take (credit
// arithmetic never produces NaN), so a CAS to poison is an unambiguous,
// exactly-once handoff of the cell's remaining value.
const poisonBits = 0x7ff8_0000_0000_0001

// epsilon under-shoots credit comparisons so float drift cannot reject a
// request the scheduler granted (same tolerance as core.AdmitCost).
const epsilon = 1e-9

// cell is one atomically updated float64 credit counter.
type cell struct{ bits atomic.Uint64 }

// load returns the cell value; closed reports a retired pool.
func (c *cell) load() (v float64, closed bool) {
	b := c.bits.Load()
	if b == poisonBits {
		return 0, true
	}
	return math.Float64frombits(b), false
}

// tryDraw atomically subtracts cost when the cell holds at least cost.
func (c *cell) tryDraw(cost float64) (drawn, closed bool) {
	for {
		b := c.bits.Load()
		if b == poisonBits {
			return false, true
		}
		v := math.Float64frombits(b)
		if v < cost-epsilon {
			return false, false
		}
		if c.bits.CompareAndSwap(b, math.Float64bits(v-cost)) {
			return true, false
		}
	}
}

// deposit atomically adds v; it reports false (value dropped) on a retired
// cell — losing a partial steal to a concurrent retirement is conservative.
func (c *cell) deposit(v float64) bool {
	for {
		b := c.bits.Load()
		if b == poisonBits {
			return false
		}
		nv := math.Float64frombits(b) + v
		if c.bits.CompareAndSwap(b, math.Float64bits(nv)) {
			return true
		}
	}
}

// retire poisons the cell and returns the value it held. Exactly one caller
// observes the pre-poison value; later calls get 0.
func (c *cell) retire() float64 {
	for {
		b := c.bits.Load()
		if b == poisonBits {
			return 0
		}
		if c.bits.CompareAndSwap(b, poisonBits) {
			return math.Float64frombits(b)
		}
	}
}

// counter is a monotone cumulative float64 sum (arrival/admission cost
// accounting). Unlike cell it is never poisoned.
type counter struct{ bits atomic.Uint64 }

func (c *counter) add(v float64) {
	for {
		b := c.bits.Load()
		nv := math.Float64frombits(b) + v
		if c.bits.CompareAndSwap(b, math.Float64bits(nv)) {
			return
		}
	}
}

func (c *counter) load() float64 { return math.Float64frombits(c.bits.Load()) }

// shard carries one shard's cumulative counters. Shards are persistent
// (pools are per-window, shards are not) so metric scrapes and window folds
// read deltas off the same monotone counters without coordination. The pad
// keeps adjacent shards' decision counters off one cache line; the float
// counters live in per-shard allocations of their own.
type shard struct {
	arrivals []counter // per principal, cost units
	admitted []counter // per principal, cost units
	admits   atomic.Uint64
	rejects  atomic.Uint64
	steals   atomic.Uint64
	_        [64]byte
}

// creditShard is one shard's slice of a window's credit pool.
type creditShard struct {
	// comm[p*n+k]: Community credits for principal p toward owner k.
	comm []cell
	// prov[p]: Provider credits for principal p.
	prov []cell
	_    [64]byte
}

// pool is one window's credit state. Immutable shape; cells mutate via CAS.
type pool struct {
	mode   core.Mode
	n      int
	owner  agreement.Principal // Provider-mode server owner
	shards []creditShard
	// dry[p] short-circuits rejects once a full steal sweep has seen no
	// credit anywhere for principal p, so saturated principals cost one
	// atomic load per reject instead of a shard scan.
	dry []atomic.Bool
}

// Config parameterizes a Plane.
type Config struct {
	// Redirector is the window scheduler the plane fronts. The plane owns
	// its credit state between StartWindow calls; callers must route all
	// admissions through the plane (never core.AdmitCost directly) and keep
	// calling the plane's StartWindow from the goroutine that owns the
	// redirector's window loop.
	Redirector *core.Redirector
	// Engine is the redirector's engine (mode, principal count).
	Engine *core.Engine
	// Shards is the credit shard count; 0 picks GOMAXPROCS.
	Shards int
}

// Plane is the sharded admission layer. Admit* methods are safe for
// unbounded concurrency and acquire no shared mutexes on the steady-state
// path; StartWindow must be called by one goroutine at a time (the window
// loop that owns the underlying core.Redirector).
type Plane struct {
	red     *core.Redirector
	mode    core.Mode
	n       int
	owner   agreement.Principal
	nshards int

	shards []shard
	cur    atomic.Pointer[pool]

	// hints hands out shard indices with per-P (per-core) affinity: a
	// sync.Pool is the only runtime-blessed way to reach per-P state, and
	// Get/Put of a tiny box is allocation-free in steady state. New() fires
	// only when a P has no cached box, assigning shards round-robin.
	hints   sync.Pool
	hintSeq atomic.Uint32

	// mu serializes window boundaries only; no request-path method takes it.
	mu sync.Mutex
	// Fold bookkeeping: last cumulative counter values per shard (under mu).
	lastArr [][]float64
	lastAdm [][]float64
	lastDec []deciderLast
	arrBuf  []float64
	admBuf  []float64
	// Carry bookkeeping: credit recovered from the pool retired at the
	// previous boundary, imported into the scheduler one window late.
	remMatrix [][]float64
	remTotal  []float64
	// Export scratch for the freshly scheduled credits.
	expMatrix [][]float64
	expTotal  []float64
}

type deciderLast struct {
	admits, rejects uint64
}

type shardHint struct{ s uint32 }

// New builds a Plane over the given redirector/engine pair and publishes an
// empty initial pool (all admits reject until the first StartWindow).
func New(cfg Config) (*Plane, error) {
	if cfg.Redirector == nil || cfg.Engine == nil {
		return nil, fmt.Errorf("admission: Redirector and Engine are required")
	}
	ns := cfg.Shards
	if ns <= 0 {
		ns = runtime.GOMAXPROCS(0)
	}
	n := cfg.Engine.NumPrincipals()
	pl := &Plane{
		red:       cfg.Redirector,
		mode:      cfg.Engine.Mode(),
		n:         n,
		owner:     cfg.Engine.ProviderPrincipal(),
		nshards:   ns,
		shards:    make([]shard, ns),
		lastArr:   make([][]float64, ns),
		lastAdm:   make([][]float64, ns),
		lastDec:   make([]deciderLast, ns),
		arrBuf:    make([]float64, n),
		admBuf:    make([]float64, n),
		remMatrix: newMatrix(n),
		remTotal:  make([]float64, n),
		expMatrix: newMatrix(n),
		expTotal:  make([]float64, n),
	}
	for s := range pl.shards {
		pl.shards[s].arrivals = make([]counter, n)
		pl.shards[s].admitted = make([]counter, n)
		pl.lastArr[s] = make([]float64, n)
		pl.lastAdm[s] = make([]float64, n)
	}
	pl.hints.New = func() any {
		return &shardHint{s: pl.hintSeq.Add(1) - 1}
	}
	pl.cur.Store(pl.newPool())
	return pl, nil
}

func newMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// newPool allocates an all-zero pool (fresh cells read as 0 credit).
func (pl *Plane) newPool() *pool {
	p := &pool{
		mode:   pl.mode,
		n:      pl.n,
		owner:  pl.owner,
		shards: make([]creditShard, pl.nshards),
		dry:    make([]atomic.Bool, pl.n),
	}
	for s := range p.shards {
		if pl.mode == core.Community {
			p.shards[s].comm = make([]cell, pl.n*pl.n)
		} else {
			p.shards[s].prov = make([]cell, pl.n)
		}
	}
	return p
}

// Shards reports the configured shard count.
func (pl *Plane) Shards() int { return pl.nshards }

// hint returns the caller's shard index with per-core affinity.
func (pl *Plane) hint() int {
	h := pl.hints.Get().(*shardHint)
	s := int(h.s) % pl.nshards
	pl.hints.Put(h)
	return s
}

// Outcome classifies how an admission decision resolved, for request
// tracing: the fast-path CAS admit, the slow-path steal admit, the
// saturated-principal (dry-flag) reject, and the full-sweep reject.
type Outcome uint8

// Admission outcomes.
const (
	OutcomeReject Outcome = iota
	OutcomeAdmit
	OutcomeSteal
	OutcomeDry
)

// AdmitDetail is the tracing side-channel of an admission decision: which
// path resolved it and on which shard.
type AdmitDetail struct {
	Outcome Outcome
	Shard   int
}

// Admit decides one request from principal p (no owner preference).
func (pl *Plane) Admit(p agreement.Principal) core.Decision {
	return pl.AdmitCost(p, -1, 1)
}

// AdmitPreferring is Admit with connection affinity, mirroring
// core.Redirector.AdmitPreferring.
func (pl *Plane) AdmitPreferring(p, preferred agreement.Principal) core.Decision {
	return pl.AdmitCost(p, preferred, 1)
}

// AdmitCost is the general admission primitive. It records the arrival on
// the caller's shard, then draws credit: local cell first (one CAS), then a
// steal sweep over sibling shards. A pool retired mid-decision (window
// boundary racing the admit) is retried against the successor pool, which
// is always published before retirement begins.
func (pl *Plane) AdmitCost(p, preferred agreement.Principal, cost float64) core.Decision {
	d, _ := pl.AdmitTraced(p, preferred, cost)
	return d
}

// AdmitTraced is AdmitCost plus the tracing detail: the resolving path
// (fast admit, steal, dry reject, sweep reject) and the deciding shard.
// Identical cost to AdmitCost — the detail is assembled from values the
// decision already computed.
func (pl *Plane) AdmitTraced(p, preferred agreement.Principal, cost float64) (core.Decision, AdmitDetail) {
	if int(p) < 0 || int(p) >= pl.n {
		return core.Decision{}, AdmitDetail{Outcome: OutcomeReject, Shard: -1}
	}
	if cost <= 0 {
		cost = 1
	}
	s := pl.hint()
	sh := &pl.shards[s]
	sh.arrivals[int(p)].add(cost)
	var cp *pool
	for tries := 0; tries < 4; tries++ {
		cp = pl.cur.Load()
		owner, ok, stole, closed := cp.admit(s, int(p), int(preferred), cost)
		if closed {
			continue // boundary race: reload the successor pool
		}
		if stole {
			sh.steals.Add(1)
		}
		if ok {
			sh.admitted[int(p)].add(cost)
			sh.admits.Add(1)
			out := OutcomeAdmit
			if stole {
				out = OutcomeSteal
			}
			return core.Decision{Admitted: true, Owner: owner}, AdmitDetail{Outcome: out, Shard: s}
		}
		break
	}
	sh.rejects.Add(1)
	out := OutcomeReject
	// The dry flag distinguishes the saturated-principal reject (whether
	// this decision short-circuited on it or was the sweep that set it).
	if cp != nil && cost <= 1 && cp.dry[int(p)].Load() {
		out = OutcomeDry
	}
	return core.Decision{}, AdmitDetail{Outcome: out, Shard: s}
}

// admit runs the decision against this pool. closed reports that the pool
// was retired before the decision landed (neither admitted nor rejected).
func (cp *pool) admit(s, p, preferred int, cost float64) (owner agreement.Principal, ok, stole, closed bool) {
	// Saturated principal: one atomic load, no scan. Oversized requests
	// (cost > 1) still scan — dryness is recorded against unit cost.
	if cp.dry[p].Load() && cost <= 1 {
		return 0, false, false, false
	}
	if cp.mode == core.Provider {
		return cp.admitProvider(s, p, cost)
	}
	return cp.admitCommunity(s, p, preferred, cost)
}

func (cp *pool) admitProvider(s, p int, cost float64) (agreement.Principal, bool, bool, bool) {
	drawn, closed := cp.shards[s].prov[p].tryDraw(cost)
	if closed {
		return 0, false, false, true
	}
	if drawn {
		return cp.owner, true, false, false
	}
	ok, closed, seen := cp.steal(s, cost, func(sib *creditShard) *cell { return &sib.prov[p] })
	if closed {
		return 0, false, false, true
	}
	if !ok && seen < epsilon && cost <= 1 {
		cp.dry[p].Store(true)
	}
	return cp.owner, ok, ok, false
}

func (cp *pool) admitCommunity(s, p, preferred int, cost float64) (agreement.Principal, bool, bool, bool) {
	sh := &cp.shards[s]
	row := sh.comm[p*cp.n : (p+1)*cp.n]
	if preferred >= 0 && preferred < cp.n {
		drawn, closed := row[preferred].tryDraw(cost)
		if closed {
			return 0, false, false, true
		}
		if drawn {
			return agreement.Principal(preferred), true, false, false
		}
	}
	// Best-funded local owner; two attempts tolerate CAS races before
	// falling to the steal path.
	for attempt := 0; attempt < 2; attempt++ {
		best, bestV := -1, 0.0
		for k := 0; k < cp.n; k++ {
			v, closed := row[k].load()
			if closed {
				return 0, false, false, true
			}
			if v > bestV {
				best, bestV = k, v
			}
		}
		if best < 0 || bestV < cost-epsilon {
			break
		}
		if drawn, closed := row[best].tryDraw(cost); closed {
			return 0, false, false, true
		} else if drawn {
			return agreement.Principal(best), true, false, false
		}
	}
	// Steal sweep, preferred owner's cells first so affinity survives
	// shard imbalance.
	order := make([]int, 0, cp.n)
	if preferred >= 0 && preferred < cp.n {
		order = append(order, preferred)
	}
	for k := 0; k < cp.n; k++ {
		if k != preferred {
			order = append(order, k)
		}
	}
	totalSeen := 0.0
	for _, k := range order {
		ok, closed, seen := cp.steal(s, cost, func(sib *creditShard) *cell { return &sib.comm[p*cp.n+k] })
		if closed {
			return 0, false, false, true
		}
		if ok {
			return agreement.Principal(k), true, true, false
		}
		totalSeen += seen
	}
	// Nothing anywhere: mark the principal dry for this pool (unit cost
	// only — a large request failing does not prove small ones will).
	if totalSeen < epsilon && cost <= 1 {
		cp.dry[p].Store(true)
	}
	return 0, false, false, false
}

// steal is the slow-path refill: a gathering sweep over every shard's cell
// for one (principal, owner) credit line, starting with the caller's own
// (off == 0 re-drains the partial credit the fast path could not use). Each
// donor is drained only as far as needed — a donor that can finish the
// request alone gives up max(need, half its value) so the excess refills the
// caller's cell and a hot shard stops sweeping. Gathering partial cells
// matters for conformance: per-shard splitting fragments fractional credits
// below unit cost, and without aggregation those fragments would be stranded
// (up to shards−1 admissions per principal per window — enough to trip the
// under-floor audit). A sweep that still comes up short deposits what it
// gathered back into the caller's cell, consolidating fragments for the next
// request. seen reports the credit observed during a failed sweep (dryness
// detection); closed reports a pool retirement racing the sweep, which drops
// any gathered credit — conservative, and bounded by one request plus one
// cell.
func (cp *pool) steal(s int, cost float64, pick func(*creditShard) *cell) (ok, closed bool, seen float64) {
	gathered := 0.0
	home := pick(&cp.shards[s])
	for off := 0; off < len(cp.shards); off++ {
		c := pick(&cp.shards[(s+off)%len(cp.shards)])
		for {
			b := c.bits.Load()
			if b == poisonBits {
				return false, true, 0
			}
			v := math.Float64frombits(b)
			if v <= 0 {
				break
			}
			need := cost - gathered
			take := v
			if v >= need {
				take = v / 2
				if take < need {
					take = need
				}
			}
			if !c.bits.CompareAndSwap(b, math.Float64bits(v-take)) {
				continue // donor changed; re-read it
			}
			gathered += take
			seen += v
			break
		}
		if gathered >= cost-epsilon {
			if excess := gathered - cost; excess > epsilon {
				// A failed deposit (pool retired mid-steal) drops the
				// excess — conservative, and bounded by one cell's value.
				_ = home.deposit(excess)
			}
			return true, false, seen
		}
	}
	if gathered > 0 {
		_ = home.deposit(gathered)
	}
	return false, false, seen
}

// StartWindow runs one window boundary: fold shard counters into the
// scheduler, re-import the late carry, schedule the next window, publish its
// pool, then retire the old pool and collect its leftover for the *next*
// boundary's carry. Errors come from the scheduler's LP solve; the plane
// still flips pools (re-arming the previous window's leftover credits, the
// same fail-static behavior core has). Must be called from the goroutine
// that owns the redirector's window loop.
func (pl *Plane) StartWindow(now time.Duration) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.foldLocked()
	if pl.mode == core.Community {
		pl.red.ImportCredits(pl.remMatrix, nil)
	} else {
		pl.red.ImportCredits(nil, pl.remTotal)
	}
	err := pl.red.StartWindow(now)
	next := pl.buildPoolLocked()
	old := pl.cur.Swap(next)
	pl.collectLocked(old)
	return err
}

// foldLocked delivers one aggregate window sample (deltas of the cumulative
// shard counters) to the core redirector.
func (pl *Plane) foldLocked() {
	for i := range pl.arrBuf {
		pl.arrBuf[i], pl.admBuf[i] = 0, 0
	}
	var admits, rejects uint64
	for s := range pl.shards {
		sh := &pl.shards[s]
		for p := 0; p < pl.n; p++ {
			a := sh.arrivals[p].load()
			pl.arrBuf[p] += a - pl.lastArr[s][p]
			pl.lastArr[s][p] = a
			m := sh.admitted[p].load()
			pl.admBuf[p] += m - pl.lastAdm[s][p]
			pl.lastAdm[s][p] = m
		}
		ad, rj := sh.admits.Load(), sh.rejects.Load()
		admits += ad - pl.lastDec[s].admits
		rejects += rj - pl.lastDec[s].rejects
		pl.lastDec[s].admits, pl.lastDec[s].rejects = ad, rj
	}
	pl.red.AddWindowSample(pl.arrBuf, pl.admBuf, int(admits), int(rejects))
}

// buildPoolLocked exports the scheduler's fresh credits and splits each
// value evenly over the shards.
func (pl *Plane) buildPoolLocked() *pool {
	next := pl.newPool()
	inv := 1 / float64(pl.nshards)
	if pl.mode == core.Community {
		pl.red.ExportCredits(pl.expMatrix, nil)
		for p := 0; p < pl.n; p++ {
			for k := 0; k < pl.n; k++ {
				share := pl.expMatrix[p][k] * inv
				for s := range next.shards {
					next.shards[s].comm[p*pl.n+k].bits.Store(math.Float64bits(share))
				}
			}
		}
	} else {
		pl.red.ExportCredits(nil, pl.expTotal)
		for p := 0; p < pl.n; p++ {
			share := pl.expTotal[p] * inv
			for s := range next.shards {
				next.shards[s].prov[p].bits.Store(math.Float64bits(share))
			}
		}
	}
	return next
}

// collectLocked retires every cell of the old pool, accumulating the unused
// credit that will be imported as carry at the next boundary.
func (pl *Plane) collectLocked(old *pool) {
	for p := 0; p < pl.n; p++ {
		for k := 0; k < pl.n; k++ {
			pl.remMatrix[p][k] = 0
		}
		pl.remTotal[p] = 0
	}
	if old == nil {
		return
	}
	for s := range old.shards {
		sh := &old.shards[s]
		if old.mode == core.Community {
			for p := 0; p < pl.n; p++ {
				for k := 0; k < pl.n; k++ {
					pl.remMatrix[p][k] += sh.comm[p*pl.n+k].retire()
				}
			}
		} else {
			for p := 0; p < pl.n; p++ {
				pl.remTotal[p] += sh.prov[p].retire()
			}
		}
	}
}

// Counts folds the per-shard decision counters at read time (metrics
// scrapes, stats handlers) without touching any lock.
func (pl *Plane) Counts() (admits, rejects uint64) {
	for s := range pl.shards {
		admits += pl.shards[s].admits.Load()
		rejects += pl.shards[s].rejects.Load()
	}
	return admits, rejects
}

// Steals folds the per-shard steal counters (slow-path refills).
func (pl *Plane) Steals() uint64 {
	var n uint64
	for s := range pl.shards {
		n += pl.shards[s].steals.Load()
	}
	return n
}

// CountersSnapshot freezes the plane's decision counters into a flat map —
// the admission-shard view a flight-recorder capture embeds: fleet totals
// plus per-shard admit/reject/steal counts (shard imbalance is itself a
// tail-latency signal).
func (pl *Plane) CountersSnapshot() map[string]float64 {
	out := make(map[string]float64, 3+3*len(pl.shards))
	var admits, rejects, steals uint64
	for s := range pl.shards {
		sh := &pl.shards[s]
		a, r, st := sh.admits.Load(), sh.rejects.Load(), sh.steals.Load()
		admits, rejects, steals = admits+a, rejects+r, steals+st
		out[fmt.Sprintf("shard%d_admits", s)] = float64(a)
		out[fmt.Sprintf("shard%d_rejects", s)] = float64(r)
		out[fmt.Sprintf("shard%d_steals", s)] = float64(st)
	}
	out["admits"] = float64(admits)
	out["rejects"] = float64(rejects)
	out["steals"] = float64(steals)
	return out
}

// CreditsRemaining sums principal p's live credit across all shards of the
// current pool (diagnostics and tests; racy by nature).
func (pl *Plane) CreditsRemaining(p agreement.Principal) float64 {
	if int(p) < 0 || int(p) >= pl.n {
		return 0
	}
	cp := pl.cur.Load()
	total := 0.0
	for s := range cp.shards {
		if cp.mode == core.Community {
			for k := 0; k < cp.n; k++ {
				v, _ := cp.shards[s].comm[int(p)*cp.n+k].load()
				total += v
			}
		} else {
			v, _ := cp.shards[s].prov[int(p)].load()
			total += v
		}
	}
	return total
}
