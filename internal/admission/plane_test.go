package admission

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
)

// communityPlane builds a two-principal community (A and B each own
// 320 req/s, B shares [0.5,0.5] with A) fronted by a plane with the given
// shard count.
func communityPlane(t testing.TB, shards int) (*Plane, *core.Redirector, agreement.Principal, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	e, err := core.NewEngine(core.Config{
		Mode: core.Community, System: s,
		Window: 100 * time.Millisecond, NumRedirectors: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	red := e.NewRedirector(0)
	pl, err := New(Config{Redirector: red, Engine: e, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return pl, red, a, b
}

// providerPlane builds the provider scenario (S at 640 req/s, A [0.8,1],
// B [0.2,1]) fronted by a plane.
func providerPlane(t testing.TB, shards int) (*Plane, *core.Redirector, agreement.Principal, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 640)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.8, 1)
	s.MustSetAgreement(sp, b, 0.2, 1)
	e, err := core.NewEngine(core.Config{
		Mode: core.Provider, System: s, ProviderPrincipal: sp,
		Window: 100 * time.Millisecond, NumRedirectors: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	red := e.NewRedirector(0)
	pl, err := New(Config{Redirector: red, Engine: e, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return pl, red, a, b
}

// warm seeds demand and runs boundaries until credits flow: the estimator
// needs one window of arrivals, the scheduler one more to grant against it.
func warm(t testing.TB, pl *Plane, red *core.Redirector, demand []float64, windows int) {
	t.Helper()
	now := time.Duration(0)
	for w := 0; w < windows; w++ {
		for p, d := range demand {
			for i := 0; i < int(d); i++ {
				pl.Admit(agreement.Principal(p))
			}
		}
		red.SetGlobal(demand, now)
		if err := pl.StartWindow(now); err != nil {
			t.Fatal(err)
		}
		now += 100 * time.Millisecond
	}
}

func TestAdmitBeforeFirstWindowRejects(t *testing.T) {
	pl, _, a, _ := communityPlane(t, 4)
	if d := pl.Admit(a); d.Admitted {
		t.Fatal("admitted against an empty initial pool")
	}
	if admits, rejects := pl.Counts(); admits != 0 || rejects != 1 {
		t.Fatalf("counts = %d/%d, want 0/1", admits, rejects)
	}
}

func TestProviderAdmitsWithinCredits(t *testing.T) {
	pl, red, a, _ := providerPlane(t, 4)
	warm(t, pl, red, []float64{0, 64, 16}, 3)
	// With B at its floor, A's grant is its mandatory share: 0.8 × 64
	// credits/window = 51.2 (scaled by the local demand fraction). Those
	// must be spendable through the shards nearly in full, and demand far
	// beyond them must bounce.
	got := 0
	for i := 0; i < 64; i++ {
		if pl.Admit(a).Admitted {
			got++
		}
	}
	if got < 45 {
		t.Fatalf("admitted %d of 64, want ≈51 (A's floor share)", got)
	}
	over := 0
	for i := 0; i < 200; i++ {
		if pl.Admit(a).Admitted {
			over++
		}
	}
	if over > 8 {
		t.Fatalf("admitted %d requests beyond the window grant", over)
	}
}

// TestShardFragmentsAreGathered pins the conformance property the steal
// sweep exists for: credits split over many shards must stay spendable even
// when every per-shard cell holds less than one request.
func TestShardFragmentsAreGathered(t *testing.T) {
	pl, red, a, _ := providerPlane(t, 16)
	warm(t, pl, red, []float64{0, 24, 8}, 3)
	// 24 credits/window over 16 shards = 1.5 per cell; a naive
	// single-cell-draw design admits at most 16 and strands the rest.
	got := 0
	for i := 0; i < 24; i++ {
		if pl.Admit(a).Admitted {
			got++
		}
	}
	if got < 22 {
		t.Fatalf("admitted %d of 24: shard fragmentation stranded credit", got)
	}
}

func TestCommunityPreferredOwnerSticks(t *testing.T) {
	pl, red, a, b := communityPlane(t, 4)
	// A's demand (48/window) exceeds its own 32-credit server, so the plan
	// must spill A onto B's shared half; a preference for owner B is then
	// honored while B-credit lasts.
	warm(t, pl, red, []float64{48, 8}, 3)
	d := pl.AdmitPreferring(a, b)
	if !d.Admitted {
		t.Fatal("preferred admit rejected despite credit")
	}
	if d.Owner != b {
		t.Fatalf("owner = %v, want preferred %v", d.Owner, b)
	}
}

func TestDryPrincipalShortCircuits(t *testing.T) {
	pl, red, a, _ := providerPlane(t, 4)
	warm(t, pl, red, []float64{0, 64, 16}, 3)
	for i := 0; i < 400; i++ {
		pl.Admit(a)
	}
	stealsWhenDry := pl.Steals()
	for i := 0; i < 100; i++ {
		if pl.Admit(a).Admitted {
			t.Fatal("admitted after principal ran dry")
		}
	}
	if pl.Steals() != stealsWhenDry {
		t.Fatal("dry principal still swept shards for credit")
	}
}

// TestFoldDeliversArrivals checks the window boundary hands the core
// redirector the shards' arrival counts — the estimator must see sharded
// demand exactly as it saw serialized demand.
func TestFoldDeliversArrivals(t *testing.T) {
	pl, red, a, _ := providerPlane(t, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				pl.Admit(a)
			}
		}()
	}
	wg.Wait()
	if err := pl.StartWindow(0); err != nil {
		t.Fatal(err)
	}
	// EWMA with alpha folds 200 arrivals into the estimate once.
	est := red.LocalEstimate()
	if est[a] < 100 {
		t.Fatalf("estimate[a] = %v after 200 arrivals, want majority folded", est[a])
	}
	if red.Rejected != 200 {
		t.Fatalf("rejected = %d, want 200 (empty initial pool)", red.Rejected)
	}
}

// TestConcurrentAdmitWindowSwap hammers admissions from many goroutines
// while the window boundary keeps flipping pools, then checks conservation:
// admissions per window never exceed the scheduler's grant plus carry. Run
// with -race this is the interleaving test the CI race step exists for.
func TestConcurrentAdmitWindowSwap(t *testing.T) {
	pl, red, a, b := providerPlane(t, 8)
	const workers = 8
	var stop atomic.Bool
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !stop.Load() {
				p := a
				if g%2 == 1 {
					p = b
				}
				if pl.Admit(p).Admitted {
					admitted.Add(1)
				}
			}
		}(g)
	}
	demand := []float64{0, 256, 64}
	now := time.Duration(0)
	const windows = 60
	for w := 0; w < windows; w++ {
		red.SetGlobal(demand, now)
		if err := pl.StartWindow(now); err != nil {
			t.Fatal(err)
		}
		now += time.Millisecond
		time.Sleep(200 * time.Microsecond)
	}
	stop.Store(true)
	wg.Wait()

	// Provider capacity is 640 req/s × 100 ms = 64 credits/window; with
	// carry (≤1 per principal per window) total admissions are bounded by
	// windows × (64 + 2). The bound fails loudly if pool swaps double-count
	// credits or resurrect retired pools.
	limit := float64(windows) * (64 + 2)
	if got := float64(admitted.Load()); got > limit {
		t.Fatalf("admitted %v requests over %d windows, conservation bound %v", got, windows, limit)
	}
	if admitted.Load() == 0 {
		t.Fatal("no admissions at all — plane wedged")
	}
	_ = red
}

// TestLeftoverCreditDoesNotCompound checks the retired pool's unspent
// credit re-enters through the scheduler's ≤1-request carry clamp: idle
// windows must not let leftovers accumulate into a burst allowance.
func TestLeftoverCreditDoesNotCompound(t *testing.T) {
	pl, red, _, _ := providerPlane(t, 4)
	warm(t, pl, red, []float64{0, 64, 16}, 3)
	before := pl.CreditsRemaining(1)
	if before < 32 {
		t.Fatalf("warmed credits = %v, want a substantial grant", before)
	}
	// Two idle boundaries: pool leftovers flow retire → import → carry.
	red.SetGlobal([]float64{0, 64, 16}, 400*time.Millisecond)
	if err := pl.StartWindow(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	red.SetGlobal([]float64{0, 64, 16}, 500*time.Millisecond)
	if err := pl.StartWindow(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	after := pl.CreditsRemaining(1)
	// The idle windows decay the demand estimate (and with it the grant) —
	// that part is the estimator working as designed. What must NOT happen
	// is the ~50 unspent credits of the retired pools surviving the carry
	// clamp and stacking on top of the fresh grant.
	if after > before+3 {
		t.Fatalf("credits grew from %v to %v: leftover credit compounds", before, after)
	}
	if after < 1 {
		t.Fatalf("credits collapsed to %v: grant (plus carry) lost entirely", after)
	}
}

func TestCountsFoldShards(t *testing.T) {
	pl, red, a, _ := providerPlane(t, 8)
	warm(t, pl, red, []float64{0, 64, 16}, 3)
	for i := 0; i < 100; i++ {
		pl.Admit(a)
	}
	admits, rejects := pl.Counts()
	if admits+rejects < 100 {
		t.Fatalf("counts %d+%d lost decisions", admits, rejects)
	}
	if admits == 0 {
		t.Fatal("no admits counted")
	}
}

// TestLeaseCreditFlowsThroughShards pins the admission half of the lease
// plane: credit deposited from an engine lease (core.Engine.SetLeaseCredits)
// must be exported into the shard pools at every window swap and stay
// spendable window after window, on top of the holder's planned share.
func TestLeaseCreditFlowsThroughShards(t *testing.T) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 640)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.8, 1)
	s.MustSetAgreement(sp, b, 0.2, 1)
	e, err := core.NewEngine(core.Config{
		Mode: core.Provider, System: s, ProviderPrincipal: sp,
		Window: 100 * time.Millisecond, NumRedirectors: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	red := e.NewRedirector(0)
	pl, err := New(Config{Redirector: red, Engine: e, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// B holds a 100 req/s lease: 10 requests per 100 ms window on top of
	// its planned 0.2 × 64 = 12.8.
	total := make([]float64, 3)
	total[b] = 100
	if err := e.SetLeaseCredits(nil, total); err != nil {
		t.Fatal(err)
	}
	demand := []float64{0, 64, 30}
	warm(t, pl, red, demand, 5)

	now := 500 * time.Millisecond
	for w := 0; w < 3; w++ {
		gotB := 0
		for i := 0; i < int(demand[int(b)]); i++ {
			if pl.Admit(b).Admitted {
				gotB++
			}
		}
		for i := 0; i < int(demand[int(a)]); i++ {
			pl.Admit(a)
		}
		// Planned 12.8 plus leased 10 ≈ 23 spendable; without the lease B
		// could never clear 14 even with the one-request carry.
		if gotB < 18 || gotB > 26 {
			t.Fatalf("window %d: B admitted %d of 30, want ≈23 (12.8 plan + 10 lease)", w, gotB)
		}
		red.SetGlobal(demand, now)
		if err := pl.StartWindow(now); err != nil {
			t.Fatal(err)
		}
		now += 100 * time.Millisecond
	}

	// Clearing the lease drops B back to its planned share at the next swap.
	if err := e.SetLeaseCredits(nil, nil); err != nil {
		t.Fatal(err)
	}
	red.SetGlobal(demand, now)
	if err := pl.StartWindow(now); err != nil {
		t.Fatal(err)
	}
	gotB := 0
	for i := 0; i < int(demand[int(b)]); i++ {
		if pl.Admit(b).Admitted {
			gotB++
		}
	}
	if gotB > 15 {
		t.Fatalf("B admitted %d after lease cleared, want ≤ 14 (planned share + carry)", gotB)
	}
}
