package admission

import (
	"io"

	"repro/internal/obs"
)

// WriteMetrics appends the plane's admission counters to a /metrics scrape.
// Everything here is a lock-free fold over the per-shard atomics — a scrape
// never perturbs the admission path it is measuring. nil pl writes nothing.
func WriteMetrics(w io.Writer, pl *Plane) {
	if pl == nil {
		return
	}
	admits, rejects := pl.Counts()
	obs.WriteMetric(w, "rsa_admission_shards", "gauge",
		"Credit shards in the admission plane.", float64(pl.Shards()))
	obs.WriteMetric(w, "rsa_admission_admits_total", "counter",
		"Requests admitted by the sharded admission plane.", float64(admits))
	obs.WriteMetric(w, "rsa_admission_rejects_total", "counter",
		"Requests rejected by the sharded admission plane.", float64(rejects))
	obs.WriteMetric(w, "rsa_admission_steals_total", "counter",
		"Admissions that fell off the shard-local fast path onto the credit-stealing sweep.", float64(pl.Steals()))
}
