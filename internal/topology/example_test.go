package topology_test

import (
	"fmt"

	"repro/internal/topology"
)

// Two regions compile into regional sub-trees under a global tier: each
// region aggregates through its own sub-root before anything crosses the
// WAN to the global root.
func ExampleCompile() {
	plane, err := topology.Compile(topology.Spec{
		Regions: []topology.Region{
			{Name: "east", Members: []int{0, 1, 2}},
			{Name: "west", Members: []int{3, 4, 5}},
		},
		Fanout: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("root %d, %d levels\n", plane.Root(), plane.Levels())
	p, _ := plane.Placement(3)
	fmt.Printf("node 3: region %s, sub-root %v, parent %d\n", p.Region, p.SubRoot, p.Parent)
	// Output:
	// root 0, 3 levels
	// node 3: region west, sub-root true, parent 0
}
