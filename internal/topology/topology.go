// Package topology models the multi-level aggregation plane as a
// first-class, validated data structure: leaf redirectors grouped into
// named regions, each region rooted at a sub-root, and the sub-roots
// joined by a global tier rooted at the global root.
//
// A Spec is the declarative description (what operators write in config):
// named regions with member lists, a shared fanout, the principal-sharding
// policy, and the delta-compression tuning for upstream queue vectors.
// Compile turns a Spec into a Plane — the concrete parent/child wiring —
// deterministically, so every node that holds the same Spec (and the same
// set of removed peers) computes the same tree without coordination.
//
// The Plane stays a single rooted tree (regional sub-trees hang off the
// global tier), so the per-epoch combining protocol of internal/combining
// runs unchanged across levels: regional sub-trees settle locally each
// window and sub-roots roll the aggregate up into the global tier.
//
// Failure handling is hierarchy-aware and purely functional: Remove
// returns a new Plane recompiled without the failed node. A failed
// regional sub-root is replaced by the next member of its own region, and
// that replacement re-attaches to the global tier — survivors never
// re-parent to a leaf of a foreign region, which is exactly the bug the
// old flat BuildTree rebuild had.
package topology

import (
	"fmt"
	"sort"

	"repro/internal/combining"
)

// Sharding policies for principal components.
const (
	// ShardNone runs one combining tree over all principals (the flat
	// pre-hierarchy behavior).
	ShardNone = "none"
	// ShardComponent gives each disjoint agreement component its own
	// combining tree with an independent epoch counter.
	ShardComponent = "component"
)

// Defaults applied by Spec.Normalize.
const (
	// DefaultFanout bounds children per interior node when the spec leaves
	// fanout unset.
	DefaultFanout = 2
	// DefaultResyncEvery is the full-frame period when delta compression is
	// on but the spec leaves the resync cadence unset.
	DefaultResyncEvery = 16
)

// DeltaSpec tunes delta compression of upstream queue vectors. The zero
// value disables compression (every frame carries the full vector).
type DeltaSpec struct {
	// Threshold suppresses a principal's entry when none of its aggregate
	// statistics moved by more than this amount since the last transmitted
	// value (transitions to exactly zero are always sent). Zero or negative
	// disables compression.
	Threshold float64
	// ResyncEvery forces a full-state frame every N frames so suppressed
	// drift is bounded; 0 means DefaultResyncEvery.
	ResyncEvery int
}

// Enabled reports whether delta compression is armed.
func (d DeltaSpec) Enabled() bool { return d.Threshold > 0 }

// Region is one named group of co-located redirectors.
type Region struct {
	// Name identifies the region in configs and /v1/topology.
	Name string
	// Members are the redirector node ids in the region.
	Members []int
}

// Spec is the declarative description of a multi-level plane.
type Spec struct {
	// Regions partition the fleet; each compiles to one sub-tree.
	Regions []Region
	// Fanout bounds children per interior node (both within regions and in
	// the global tier); values below 2 mean DefaultFanout.
	Fanout int
	// Sharding selects the principal-sharding policy: ShardNone (default)
	// or ShardComponent.
	Sharding string
	// Delta tunes upstream queue-vector compression.
	Delta DeltaSpec
}

// Normalize returns the spec with defaults applied (fanout, sharding name,
// resync cadence).
func (s Spec) Normalize() Spec {
	if s.Fanout < 2 {
		s.Fanout = DefaultFanout
	}
	if s.Sharding == "" {
		s.Sharding = ShardNone
	}
	if s.Delta.Enabled() && s.Delta.ResyncEvery <= 0 {
		s.Delta.ResyncEvery = DefaultResyncEvery
	}
	return s
}

// Validate checks the spec for structural errors: no regions, empty or
// duplicate region names, duplicate or negative members, or an unknown
// sharding policy.
func (s Spec) Validate() error {
	if len(s.Regions) == 0 {
		return fmt.Errorf("topology: no regions")
	}
	names := make(map[string]bool, len(s.Regions))
	seen := make(map[int]string)
	for _, r := range s.Regions {
		if r.Name == "" {
			return fmt.Errorf("topology: region with empty name")
		}
		if names[r.Name] {
			return fmt.Errorf("topology: duplicate region %q", r.Name)
		}
		names[r.Name] = true
		if len(r.Members) == 0 {
			return fmt.Errorf("topology: region %q has no members", r.Name)
		}
		for _, m := range r.Members {
			if m < 0 {
				return fmt.Errorf("topology: region %q: negative member id %d", r.Name, m)
			}
			if prev, dup := seen[m]; dup {
				return fmt.Errorf("topology: member %d in both %q and %q", m, prev, r.Name)
			}
			seen[m] = r.Name
		}
	}
	switch s.Sharding {
	case "", ShardNone, ShardComponent:
	default:
		return fmt.Errorf("topology: unknown sharding policy %q", s.Sharding)
	}
	if s.Delta.Threshold < 0 {
		return fmt.Errorf("topology: negative delta threshold %g", s.Delta.Threshold)
	}
	if s.Delta.ResyncEvery < 0 {
		return fmt.Errorf("topology: negative delta resync cadence %d", s.Delta.ResyncEvery)
	}
	return nil
}

// Placement is one node's position in a compiled plane.
type Placement struct {
	// ID is the node's id.
	ID combining.NodeID
	// Region names the region the node belongs to.
	Region string
	// Parent is the node's parent (-1 at the global root).
	Parent combining.NodeID
	// Children are the node's children: regional children plus, for a
	// sub-root, the sub-roots below it in the global tier.
	Children []combining.NodeID
	// Level is the hop distance to the global root.
	Level int
	// SubRoot marks the node rooting its region's sub-tree (the global
	// root is also its own region's sub-root).
	SubRoot bool
}

// Plane is a compiled plane: the concrete rooted tree for a Spec minus a
// set of removed (failed) nodes. Planes are immutable; Remove and Restore
// return recompiled copies.
type Plane struct {
	spec    Spec
	removed map[combining.NodeID]bool
	root    combining.NodeID
	nodes   map[combining.NodeID]*Placement
	order   []combining.NodeID // sorted live ids
	levels  int
}

// Compile validates and compiles a spec into its plane.
func Compile(spec Spec) (*Plane, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return compile(spec, nil)
}

// FromFlat wraps a flat member list as a single-region spec and compiles
// it — the legacy flat-tree layout expressed in the new model. The result
// is wiring-identical to combining.BuildTree(members, fanout).
func FromFlat(members []combining.NodeID, fanout int) (*Plane, error) {
	ms := make([]int, len(members))
	for i, m := range members {
		ms[i] = int(m)
	}
	return Compile(Spec{
		Regions: []Region{{Name: "flat", Members: ms}},
		Fanout:  fanout,
	})
}

// compile builds the plane for spec minus removed. It never fails once the
// spec validated, except when every member is removed.
func compile(spec Spec, removed map[combining.NodeID]bool) (*Plane, error) {
	p := &Plane{
		spec:    spec,
		removed: make(map[combining.NodeID]bool, len(removed)),
		nodes:   make(map[combining.NodeID]*Placement),
	}
	for id := range removed {
		p.removed[id] = true
	}

	// Per-region sub-trees over the live members.
	var subRoots []combining.NodeID
	regionOf := make(map[combining.NodeID]string)
	for _, r := range spec.Regions {
		var live []combining.NodeID
		for _, m := range r.Members {
			id := combining.NodeID(m)
			if !p.removed[id] {
				live = append(live, id)
				regionOf[id] = r.Name
			}
		}
		if len(live) == 0 {
			continue // region fully failed; drop it from the tier
		}
		topo := combining.BuildTree(live, spec.Fanout)
		subRoots = append(subRoots, topo.Root)
		for _, id := range live {
			p.nodes[id] = &Placement{
				ID:       id,
				Region:   r.Name,
				Parent:   parentOf(topo, id),
				Children: append([]combining.NodeID(nil), topo.Children[id]...),
				SubRoot:  id == topo.Root,
			}
		}
	}
	if len(subRoots) == 0 {
		return nil, fmt.Errorf("topology: no live members")
	}

	// Global tier over the sub-roots; the global root dual-hats as its own
	// region's sub-root.
	tier := combining.BuildTree(subRoots, spec.Fanout)
	p.root = tier.Root
	for _, sr := range subRoots {
		n := p.nodes[sr]
		n.Parent = parentOf(tier, sr)
		n.Children = append(n.Children, tier.Children[sr]...)
	}

	// Levels by walk from the root (the tree is connected by construction).
	p.levels = assignLevels(p.nodes, p.root)
	for id := range p.nodes {
		p.order = append(p.order, id)
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i] < p.order[j] })
	return p, nil
}

// parentOf reads a node's parent from a flat topology (-1 at its root).
func parentOf(t combining.Topology, id combining.NodeID) combining.NodeID {
	if id == t.Root {
		return -1
	}
	return t.Parent[id]
}

// assignLevels stamps hop distances from the root and returns the level
// count (depth + 1).
func assignLevels(nodes map[combining.NodeID]*Placement, root combining.NodeID) int {
	max := 0
	queue := []combining.NodeID{root}
	nodes[root].Level = 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n := nodes[id]
		if n.Level > max {
			max = n.Level
		}
		for _, c := range n.Children {
			nodes[c].Level = n.Level + 1
			queue = append(queue, c)
		}
	}
	return max + 1
}

// Spec returns the declarative spec the plane was compiled from
// (normalized).
func (p *Plane) Spec() Spec { return p.spec }

// Root returns the global root.
func (p *Plane) Root() combining.NodeID { return p.root }

// Levels returns the number of levels (a one-node plane has 1).
func (p *Plane) Levels() int { return p.levels }

// Members returns the live node ids in ascending order. The slice is
// shared; callers must not mutate it.
func (p *Plane) Members() []combining.NodeID { return p.order }

// Placement returns a node's position, or false for removed or unknown
// nodes.
func (p *Plane) Placement(id combining.NodeID) (Placement, bool) {
	n, ok := p.nodes[id]
	if !ok {
		return Placement{}, false
	}
	return *n, true
}

// Alive reports whether a node is present and not removed.
func (p *Plane) Alive(id combining.NodeID) bool {
	_, ok := p.nodes[id]
	return ok
}

// Removed returns the removed node ids in ascending order.
func (p *Plane) Removed() []combining.NodeID {
	ids := make([]combining.NodeID, 0, len(p.removed))
	for id := range p.removed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Remove returns the plane recompiled without the failed node. Removal is
// hierarchy-aware: a failed sub-root is replaced from within its own
// region and the replacement re-attaches to the global tier; orphans never
// cross into a sibling region. Removing the last live node returns the
// plane unchanged (a plane always has a root).
func (p *Plane) Remove(failed combining.NodeID) *Plane {
	if !p.Alive(failed) {
		return p
	}
	removed := make(map[combining.NodeID]bool, len(p.removed)+1)
	for id := range p.removed {
		removed[id] = true
	}
	removed[failed] = true
	np, err := compile(p.spec, removed)
	if err != nil {
		return p
	}
	return np
}

// Restore returns the plane recompiled with a previously removed node
// back in place (used when a crashed redirector rejoins).
func (p *Plane) Restore(id combining.NodeID) *Plane {
	if !p.removed[id] {
		return p
	}
	removed := make(map[combining.NodeID]bool, len(p.removed))
	for r := range p.removed {
		if r != id {
			removed[r] = true
		}
	}
	np, err := compile(p.spec, removed)
	if err != nil {
		return p
	}
	return np
}

// Topology flattens the plane into the combining-package topology shape
// (root plus parent/child maps) for code that predates regions.
func (p *Plane) Topology() combining.Topology {
	t := combining.Topology{
		Root:     p.root,
		Parent:   make(map[combining.NodeID]combining.NodeID, len(p.nodes)),
		Children: make(map[combining.NodeID][]combining.NodeID, len(p.nodes)),
	}
	for id, n := range p.nodes {
		t.Parent[id] = n.Parent // -1 at the root, matching BuildTree
		t.Children[id] = append([]combining.NodeID(nil), n.Children...)
	}
	return t
}

// String renders the plane for logs and tests: region names with members,
// sub-roots starred, the global root double-starred.
func (p *Plane) String() string {
	out := ""
	for _, r := range p.spec.Regions {
		line := ""
		for _, m := range r.Members {
			id := combining.NodeID(m)
			n, ok := p.nodes[id]
			if !ok {
				continue
			}
			if line != "" {
				line += " "
			}
			switch {
			case id == p.root:
				line += fmt.Sprintf("%d**", m)
			case n.SubRoot:
				line += fmt.Sprintf("%d*", m)
			default:
				line += fmt.Sprintf("%d", m)
			}
		}
		if line == "" {
			line = "-"
		}
		out += fmt.Sprintf("%s[%s] ", r.Name, line)
	}
	return fmt.Sprintf("%slevels=%d", out, p.levels)
}
