package topology

import (
	"testing"

	"repro/internal/combining"
)

func twoRegions() Spec {
	return Spec{
		Regions: []Region{
			{Name: "east", Members: []int{0, 1, 2, 3}},
			{Name: "west", Members: []int{4, 5, 6, 7}},
		},
		Fanout: 2,
	}
}

func TestCompileTwoRegions(t *testing.T) {
	p, err := Compile(twoRegions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Root() != 0 {
		t.Fatalf("root = %d, want 0", p.Root())
	}
	// Sub-roots are the lowest member of each region; the global root
	// dual-hats as east's sub-root.
	for id, wantSub := range map[combining.NodeID]bool{0: true, 4: true, 1: false, 5: false} {
		n, ok := p.Placement(id)
		if !ok {
			t.Fatalf("placement(%d) missing", id)
		}
		if n.SubRoot != wantSub {
			t.Fatalf("placement(%d).SubRoot = %v, want %v", id, n.SubRoot, wantSub)
		}
	}
	// West's sub-root hangs off the global tier, not inside east.
	w, _ := p.Placement(4)
	if w.Parent != 0 {
		t.Fatalf("west sub-root parent = %d, want 0", w.Parent)
	}
	// Every non-sub-root node's parent is inside its own region.
	for _, id := range p.Members() {
		n, _ := p.Placement(id)
		if n.SubRoot {
			continue
		}
		par, _ := p.Placement(n.Parent)
		if par.Region != n.Region {
			t.Fatalf("node %d (region %s) parented to %d (region %s)", id, n.Region, n.Parent, par.Region)
		}
	}
	if p.Levels() < 3 {
		t.Fatalf("levels = %d, want >= 3", p.Levels())
	}
	// The flattened view must be a rooted tree over all 8 members, with
	// the root carrying the BuildTree-style -1 parent entry (consumers
	// treat a missing Parent entry as "removed").
	topo := p.Topology()
	if len(topo.Parent) != 8 || topo.Root != 0 || topo.Parent[0] != -1 {
		t.Fatalf("flat topology = %+v", topo)
	}
}

func TestCompileIsDeterministic(t *testing.T) {
	a, err := Compile(twoRegions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(twoRegions())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("planes differ: %s vs %s", a, b)
	}
	for _, id := range a.Members() {
		na, _ := a.Placement(id)
		nb, _ := b.Placement(id)
		if na.Parent != nb.Parent || na.Level != nb.Level {
			t.Fatalf("node %d placed differently: %+v vs %+v", id, na, nb)
		}
	}
}

// TestRemoveSubRootReparentsWithinRegion is the regression test for the
// flat-rebuild bug: killing a regional sub-root must promote a replacement
// from the same region and re-attach it to the global tier — survivors
// never re-parent to a leaf of a sibling region.
func TestRemoveSubRootReparentsWithinRegion(t *testing.T) {
	p, err := Compile(twoRegions())
	if err != nil {
		t.Fatal(err)
	}
	np := p.Remove(4) // west's sub-root
	if np.Alive(4) {
		t.Fatal("removed node still alive")
	}
	// 5 is promoted to west sub-root and re-attaches to the global tier.
	n5, ok := np.Placement(5)
	if !ok || !n5.SubRoot {
		t.Fatalf("placement(5) = %+v, want west sub-root", n5)
	}
	if got, _ := np.Placement(n5.Parent); got.Region != "east" || !got.SubRoot {
		t.Fatalf("new west sub-root parented to %+v, want a global-tier node", got)
	}
	// The remaining west members stay inside west.
	for _, id := range []combining.NodeID{6, 7} {
		n, _ := np.Placement(id)
		if n.Region != "west" {
			t.Fatalf("node %d region = %s", id, n.Region)
		}
		par, _ := np.Placement(n.Parent)
		if par.Region != "west" {
			t.Fatalf("west survivor %d re-parented to %s node %d", id, par.Region, n.Parent)
		}
	}
	// Restore brings the original wiring back.
	rp := np.Restore(4)
	if rn, _ := rp.Placement(4); !rn.SubRoot {
		t.Fatalf("restored node 4 = %+v, want sub-root", rn)
	}
}

func TestRemoveGlobalRoot(t *testing.T) {
	p, err := Compile(twoRegions())
	if err != nil {
		t.Fatal(err)
	}
	np := p.Remove(0)
	// East promotes 1; the new global root is the lowest sub-root.
	n1, _ := np.Placement(1)
	if !n1.SubRoot {
		t.Fatalf("placement(1) = %+v, want sub-root", n1)
	}
	root, _ := np.Placement(np.Root())
	if !root.SubRoot || root.Parent != -1 {
		t.Fatalf("new root = %+v", root)
	}
	if np.Levels() < 2 {
		t.Fatalf("levels = %d", np.Levels())
	}
}

func TestRemoveWholeRegion(t *testing.T) {
	p, err := Compile(Spec{
		Regions: []Region{
			{Name: "east", Members: []int{0, 1}},
			{Name: "west", Members: []int{2}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	np := p.Remove(2)
	if np.Alive(2) || len(np.Members()) != 2 {
		t.Fatalf("members = %v", np.Members())
	}
	// Removing everything leaves the last plane intact (a plane always has
	// a root).
	np = np.Remove(0)
	last := np.Remove(1)
	if last.Root() != 1 {
		t.Fatalf("root = %d, want the sole survivor 1", last.Root())
	}
}

func TestFromFlatMatchesBuildTree(t *testing.T) {
	members := []combining.NodeID{3, 1, 4, 1, 5}[:3] // 3,1,4
	p, err := FromFlat(members, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := combining.BuildTree(members, 2)
	if p.Root() != want.Root {
		t.Fatalf("root = %d, want %d", p.Root(), want.Root)
	}
	for id, wp := range want.Parent {
		n, _ := p.Placement(id)
		if n.Parent != wp {
			t.Fatalf("parent(%d) = %d, want %d", id, n.Parent, wp)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []Spec{
		{},
		{Regions: []Region{{Name: "", Members: []int{0}}}},
		{Regions: []Region{{Name: "a", Members: nil}}},
		{Regions: []Region{{Name: "a", Members: []int{0}}, {Name: "a", Members: []int{1}}}},
		{Regions: []Region{{Name: "a", Members: []int{0}}, {Name: "b", Members: []int{0}}}},
		{Regions: []Region{{Name: "a", Members: []int{-1}}}},
		{Regions: []Region{{Name: "a", Members: []int{0}}}, Sharding: "zonal"},
		{Regions: []Region{{Name: "a", Members: []int{0}}}, Delta: DeltaSpec{Threshold: -1}},
	}
	for i, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, spec)
		}
	}
	if err := (twoRegions()).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestNormalize(t *testing.T) {
	s := Spec{
		Regions: []Region{{Name: "a", Members: []int{0}}},
		Delta:   DeltaSpec{Threshold: 0.5},
	}.Normalize()
	if s.Fanout != DefaultFanout || s.Sharding != ShardNone || s.Delta.ResyncEvery != DefaultResyncEvery {
		t.Fatalf("normalized = %+v", s)
	}
}
