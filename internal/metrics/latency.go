package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// latencyBuckets are logarithmic bucket upper bounds from 1 ms to ~137 s.
const numLatencyBuckets = 18

// Latency accumulates response-time distributions per series — the metric
// the community scheduler optimizes ("minimize the maximum response time").
// It is not safe for concurrent use.
type Latency struct {
	names  []string
	count  []int
	sum    []time.Duration
	max    []time.Duration
	bucket [][]int // [series][bucket]
}

// NewLatency creates a recorder with one distribution per name.
func NewLatency(names []string) *Latency {
	l := &Latency{
		names:  append([]string(nil), names...),
		count:  make([]int, len(names)),
		sum:    make([]time.Duration, len(names)),
		max:    make([]time.Duration, len(names)),
		bucket: make([][]int, len(names)),
	}
	for i := range l.bucket {
		l.bucket[i] = make([]int, numLatencyBuckets)
	}
	return l
}

// bucketFor maps a duration to its logarithmic bucket: bucket b holds
// latencies ≤ 1ms·2^b.
func bucketFor(d time.Duration) int {
	if d <= time.Millisecond {
		return 0
	}
	b := int(math.Ceil(math.Log2(float64(d) / float64(time.Millisecond))))
	if b >= numLatencyBuckets {
		return numLatencyBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper bound of bucket b.
func bucketUpper(b int) time.Duration {
	return time.Millisecond << uint(b)
}

// Observe records one response time for series i.
func (l *Latency) Observe(i int, d time.Duration) {
	if i < 0 || i >= len(l.count) || d < 0 {
		return
	}
	l.count[i]++
	l.sum[i] += d
	if d > l.max[i] {
		l.max[i] = d
	}
	l.bucket[i][bucketFor(d)]++
}

// Count reports observations for series i.
func (l *Latency) Count(i int) int {
	if i < 0 || i >= len(l.count) {
		return 0
	}
	return l.count[i]
}

// Mean reports the average response time of series i (0 when empty).
func (l *Latency) Mean(i int) time.Duration {
	if i < 0 || i >= len(l.count) || l.count[i] == 0 {
		return 0
	}
	return l.sum[i] / time.Duration(l.count[i])
}

// Max reports the largest observed response time of series i.
func (l *Latency) Max(i int) time.Duration {
	if i < 0 || i >= len(l.max) {
		return 0
	}
	return l.max[i]
}

// Quantile reports an upper bound on the q-quantile (0 < q ≤ 1) of series
// i, at bucket resolution (powers of two of 1 ms).
func (l *Latency) Quantile(i int, q float64) time.Duration {
	if i < 0 || i >= len(l.count) || l.count[i] == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	need := int(math.Ceil(q * float64(l.count[i])))
	seen := 0
	for b := 0; b < numLatencyBuckets; b++ {
		seen += l.bucket[i][b]
		if seen >= need {
			return bucketUpper(b)
		}
	}
	return bucketUpper(numLatencyBuckets - 1)
}

// String renders a compact per-series summary.
func (l *Latency) String() string {
	var sb strings.Builder
	for i, name := range l.names {
		fmt.Fprintf(&sb, "%s: n=%d mean=%v p95≤%v max=%v\n",
			name, l.Count(i), l.Mean(i), l.Quantile(i, 0.95), l.Max(i))
	}
	return sb.String()
}
