package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// SolverStats aggregates scheduling fast-path telemetry: plan-cache hits and
// misses, LP solve count and latency, and how often a scheduler had to drop
// mandatory floors to keep a window feasible. One instance is shared by every
// redirector of an engine, so all methods are safe for concurrent use, and a
// nil *SolverStats is a valid no-op receiver (standalone schedulers need not
// wire one up).
type SolverStats struct {
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	solves         atomic.Int64
	floorFallbacks atomic.Int64
	solveNanos     atomic.Int64
	maxSolveNanos  atomic.Int64
}

// CacheHit records one plan-cache hit.
func (s *SolverStats) CacheHit() {
	if s != nil {
		s.cacheHits.Add(1)
	}
}

// CacheMiss records one plan-cache miss.
func (s *SolverStats) CacheMiss() {
	if s != nil {
		s.cacheMisses.Add(1)
	}
}

// RecordSolve records one LP solve and its wall-clock latency.
func (s *SolverStats) RecordSolve(d time.Duration) {
	if s == nil {
		return
	}
	s.solves.Add(1)
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	s.solveNanos.Add(ns)
	for {
		max := s.maxSolveNanos.Load()
		if ns <= max || s.maxSolveNanos.CompareAndSwap(max, ns) {
			return
		}
	}
}

// FloorFallback records one window solved without mandatory floors and
// reports the new total, so callers can log the first occurrence exactly
// once.
func (s *SolverStats) FloorFallback() int64 {
	if s == nil {
		return 0
	}
	return s.floorFallbacks.Add(1)
}

// CacheHits reports the number of plan-cache hits.
func (s *SolverStats) CacheHits() int64 {
	if s == nil {
		return 0
	}
	return s.cacheHits.Load()
}

// CacheMisses reports the number of plan-cache misses.
func (s *SolverStats) CacheMisses() int64 {
	if s == nil {
		return 0
	}
	return s.cacheMisses.Load()
}

// Solves reports the number of LP solves performed.
func (s *SolverStats) Solves() int64 {
	if s == nil {
		return 0
	}
	return s.solves.Load()
}

// FloorFallbacks reports how many windows were re-solved without mandatory
// floors because entitlements and capacities disagreed.
func (s *SolverStats) FloorFallbacks() int64 {
	if s == nil {
		return 0
	}
	return s.floorFallbacks.Load()
}

// HitRate reports the plan-cache hit fraction in [0, 1] (0 when no lookups
// have happened).
func (s *SolverStats) HitRate() float64 {
	if s == nil {
		return 0
	}
	h, m := s.cacheHits.Load(), s.cacheMisses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// MeanSolve reports the average LP solve latency (0 when none ran).
func (s *SolverStats) MeanSolve() time.Duration {
	if s == nil {
		return 0
	}
	n := s.solves.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(s.solveNanos.Load() / n)
}

// MaxSolve reports the largest observed LP solve latency.
func (s *SolverStats) MaxSolve() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.maxSolveNanos.Load())
}

// String renders a one-line operator summary.
func (s *SolverStats) String() string {
	if s == nil {
		return "solver stats: disabled"
	}
	return fmt.Sprintf("plan cache %d/%d hits (%.1f%%), %d solves (mean %v, max %v), %d floor fallbacks",
		s.CacheHits(), s.CacheHits()+s.CacheMisses(), 100*s.HitRate(),
		s.Solves(), s.MeanSolve(), s.MaxSolve(), s.FloorFallbacks())
}
