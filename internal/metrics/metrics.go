// Package metrics collects per-principal request-rate time series, bucketed
// over (virtual or wall) time — the data behind every figure in the paper's
// evaluation: processed requests/second per organization as phases change.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Recorder accumulates event counts into fixed-width time buckets per
// series. It is not safe for concurrent use.
type Recorder struct {
	bucket  time.Duration
	names   []string
	counts  [][]float64 // [series][bucket]
	dropped int64       // samples rejected for an out-of-range series or time
}

// NewRecorder creates a recorder with the given bucket width (typically one
// second, like the paper's plots) and one series per name.
func NewRecorder(bucket time.Duration, names []string) *Recorder {
	if bucket <= 0 {
		panic("metrics: bucket width must be positive")
	}
	r := &Recorder{bucket: bucket, names: append([]string(nil), names...)}
	r.counts = make([][]float64, len(names))
	return r
}

// NumSeries reports the number of series.
func (r *Recorder) NumSeries() int { return len(r.names) }

// Name returns the display name of series i.
func (r *Recorder) Name(i int) string { return r.names[i] }

// Add records n events on series i at time now. Samples with an unknown
// series index or a negative timestamp cannot be bucketed; rather than
// silently vanishing they increment the Dropped counter so a harness bug
// (mis-wired principal index, clock running backwards) shows up in results.
func (r *Recorder) Add(now time.Duration, i int, n float64) {
	if i < 0 || i >= len(r.counts) || now < 0 {
		r.dropped++
		return
	}
	b := int(now / r.bucket)
	for len(r.counts[i]) <= b {
		r.counts[i] = append(r.counts[i], 0)
	}
	r.counts[i][b] += n
}

// Dropped reports how many samples were rejected by Add.
func (r *Recorder) Dropped() int64 { return r.dropped }

// NumBuckets reports the highest bucket count across series.
func (r *Recorder) NumBuckets() int {
	max := 0
	for _, s := range r.counts {
		if len(s) > max {
			max = len(s)
		}
	}
	return max
}

// Rate returns series i's event rate (events per second) in bucket b.
func (r *Recorder) Rate(i, b int) float64 {
	if i < 0 || i >= len(r.counts) || b < 0 || b >= len(r.counts[i]) {
		return 0
	}
	return r.counts[i][b] / r.bucket.Seconds()
}

// Series returns the full per-bucket rate series for series i, padded to
// NumBuckets.
func (r *Recorder) Series(i int) []float64 {
	n := r.NumBuckets()
	out := make([]float64, n)
	for b := 0; b < n; b++ {
		out[b] = r.Rate(i, b)
	}
	return out
}

// MeanRate returns the average rate of series i over buckets [from, to).
// Buckets outside the recorded range count as zero.
func (r *Recorder) MeanRate(i, from, to int) float64 {
	if to <= from {
		return 0
	}
	total := 0.0
	for b := from; b < to; b++ {
		total += r.Rate(i, b)
	}
	return total / float64(to-from)
}

// MeanRateBetween averages series i over the half-open time interval
// [from, to), expressed in recorder time.
func (r *Recorder) MeanRateBetween(i int, from, to time.Duration) float64 {
	return r.MeanRate(i, int(from/r.bucket), int(to/r.bucket))
}

// WriteTable renders all series as a tab-separated table: one row per
// bucket, one column per series — the same rows the paper plots.
func (r *Recorder) WriteTable(w io.Writer) error {
	header := append([]string{"t(s)"}, r.names...)
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	secondsPerBucket := r.bucket.Seconds()
	for b := 0; b < r.NumBuckets(); b++ {
		row := []string{fmt.Sprintf("%.0f", float64(b)*secondsPerBucket)}
		for i := range r.names {
			row = append(row, fmt.Sprintf("%.1f", r.Rate(i, b)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// PhaseStat summarizes one series over one phase.
type PhaseStat struct {
	Series string
	Phase  string
	Mean   float64
}

// Phase is a labeled time interval of an experiment.
type Phase struct {
	Name     string
	From, To time.Duration
}

// PhaseMeans computes the mean rate of every series over each phase,
// ordered by phase then series.
func (r *Recorder) PhaseMeans(phases []Phase) []PhaseStat {
	var out []PhaseStat
	for _, p := range phases {
		for i := range r.names {
			out = append(out, PhaseStat{
				Series: r.names[i],
				Phase:  p.Name,
				Mean:   r.MeanRateBetween(i, p.From, p.To),
			})
		}
	}
	return out
}

// FormatPhaseMeans renders phase means as an aligned text table.
func FormatPhaseMeans(stats []PhaseStat) string {
	byPhase := make(map[string][]PhaseStat)
	var order []string
	for _, s := range stats {
		if _, ok := byPhase[s.Phase]; !ok {
			order = append(order, s.Phase)
		}
		byPhase[s.Phase] = append(byPhase[s.Phase], s)
	}
	var sb strings.Builder
	for _, ph := range order {
		row := byPhase[ph]
		sort.Slice(row, func(i, j int) bool { return row[i].Series < row[j].Series })
		fmt.Fprintf(&sb, "%-10s", ph)
		for _, s := range row {
			fmt.Fprintf(&sb, " %s=%7.1f", s.Series, s.Mean)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
