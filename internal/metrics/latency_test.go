package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyBasics(t *testing.T) {
	l := NewLatency([]string{"A"})
	l.Observe(0, 10*time.Millisecond)
	l.Observe(0, 20*time.Millisecond)
	l.Observe(0, 90*time.Millisecond)
	if l.Count(0) != 3 {
		t.Fatalf("Count = %d", l.Count(0))
	}
	if got := l.Mean(0); got != 40*time.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := l.Max(0); got != 90*time.Millisecond {
		t.Fatalf("Max = %v", got)
	}
	if !strings.Contains(l.String(), "A: n=3") {
		t.Fatalf("String = %q", l.String())
	}
}

func TestLatencyQuantiles(t *testing.T) {
	l := NewLatency([]string{"A"})
	for i := 0; i < 90; i++ {
		l.Observe(0, 2*time.Millisecond) // bucket ≤ 2 ms
	}
	for i := 0; i < 10; i++ {
		l.Observe(0, 900*time.Millisecond) // slow tail
	}
	if q := l.Quantile(0, 0.5); q > 4*time.Millisecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := l.Quantile(0, 0.99); q < 512*time.Millisecond {
		t.Fatalf("p99 = %v, want ≥ 512ms bucket", q)
	}
	if q := l.Quantile(0, 2); q < 512*time.Millisecond {
		t.Fatalf("clamped q>1 = %v", q)
	}
}

func TestLatencyEdgeCases(t *testing.T) {
	l := NewLatency([]string{"A"})
	l.Observe(-1, time.Second)
	l.Observe(5, time.Second)
	l.Observe(0, -time.Second)
	if l.Count(0) != 0 || l.Count(5) != 0 {
		t.Fatal("invalid observations recorded")
	}
	if l.Mean(0) != 0 || l.Max(9) != 0 || l.Quantile(0, 0.5) != 0 || l.Quantile(0, 0) != 0 {
		t.Fatal("empty accessors not zero")
	}
	// Very large latencies land in the last bucket without panicking.
	l.Observe(0, 10*time.Hour)
	if l.Quantile(0, 1) <= 0 {
		t.Fatal("overflow bucket broken")
	}
}

func TestBucketMonotonicity(t *testing.T) {
	prev := -1
	for d := time.Millisecond; d < 200*time.Second; d *= 2 {
		b := bucketFor(d)
		if b < prev {
			t.Fatalf("bucketFor not monotone at %v", d)
		}
		prev = b
		if bucketUpper(b) < d {
			t.Fatalf("bucketUpper(%d) = %v < %v", b, bucketUpper(b), d)
		}
	}
}
