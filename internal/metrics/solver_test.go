package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSolverStatsCounters(t *testing.T) {
	s := &SolverStats{}
	s.CacheHit()
	s.CacheHit()
	s.CacheHit()
	s.CacheMiss()
	s.RecordSolve(10 * time.Millisecond)
	s.RecordSolve(30 * time.Millisecond)
	if s.CacheHits() != 3 || s.CacheMisses() != 1 {
		t.Fatalf("hits/misses = %d/%d", s.CacheHits(), s.CacheMisses())
	}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %g, want 0.75", got)
	}
	if s.Solves() != 2 {
		t.Fatalf("solves = %d", s.Solves())
	}
	if s.MeanSolve() != 20*time.Millisecond {
		t.Fatalf("mean = %v", s.MeanSolve())
	}
	if s.MaxSolve() != 30*time.Millisecond {
		t.Fatalf("max = %v", s.MaxSolve())
	}
	if n := s.FloorFallback(); n != 1 {
		t.Fatalf("first fallback total = %d", n)
	}
	if n := s.FloorFallback(); n != 2 {
		t.Fatalf("second fallback total = %d", n)
	}
	if !strings.Contains(s.String(), "2 floor fallbacks") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSolverStatsNilSafe(t *testing.T) {
	var s *SolverStats
	s.CacheHit()
	s.CacheMiss()
	s.RecordSolve(time.Second)
	if s.FloorFallback() != 0 || s.CacheHits() != 0 || s.CacheMisses() != 0 ||
		s.Solves() != 0 || s.FloorFallbacks() != 0 || s.HitRate() != 0 ||
		s.MeanSolve() != 0 || s.MaxSolve() != 0 {
		t.Fatal("nil stats must read as zero")
	}
	if s.String() != "solver stats: disabled" {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSolverStatsZeroReads(t *testing.T) {
	s := &SolverStats{}
	if s.HitRate() != 0 || s.MeanSolve() != 0 {
		t.Fatal("empty stats must read as zero")
	}
}

func TestSolverStatsConcurrent(t *testing.T) {
	s := &SolverStats{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.CacheHit()
				s.RecordSolve(time.Duration(g+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if s.CacheHits() != 8000 || s.Solves() != 8000 {
		t.Fatalf("hits/solves = %d/%d", s.CacheHits(), s.Solves())
	}
	if s.MaxSolve() != 8*time.Microsecond {
		t.Fatalf("max = %v", s.MaxSolve())
	}
}
