package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestRatesAndBuckets(t *testing.T) {
	r := NewRecorder(time.Second, []string{"A", "B"})
	r.Add(0, 0, 5)
	r.Add(500*time.Millisecond, 0, 5)
	r.Add(1500*time.Millisecond, 0, 3)
	r.Add(0, 1, 1)
	if r.NumSeries() != 2 || r.Name(0) != "A" {
		t.Fatal("series metadata wrong")
	}
	if r.Rate(0, 0) != 10 || r.Rate(0, 1) != 3 {
		t.Fatalf("rates = %v %v", r.Rate(0, 0), r.Rate(0, 1))
	}
	if r.Rate(1, 1) != 0 || r.Rate(9, 0) != 0 || r.Rate(0, -1) != 0 {
		t.Fatal("out-of-range rates should be 0")
	}
	if r.NumBuckets() != 2 {
		t.Fatalf("NumBuckets = %d", r.NumBuckets())
	}
	s := r.Series(1)
	if len(s) != 2 || s[0] != 1 || s[1] != 0 {
		t.Fatalf("Series(1) = %v", s)
	}
}

func TestSubSecondBuckets(t *testing.T) {
	r := NewRecorder(100*time.Millisecond, []string{"A"})
	r.Add(50*time.Millisecond, 0, 2)
	// 2 events in a 100 ms bucket = 20 events/second.
	if r.Rate(0, 0) != 20 {
		t.Fatalf("rate = %v, want 20", r.Rate(0, 0))
	}
}

func TestMeanRate(t *testing.T) {
	r := NewRecorder(time.Second, []string{"A"})
	for s := 0; s < 10; s++ {
		r.Add(time.Duration(s)*time.Second, 0, float64(s))
	}
	if got := r.MeanRate(0, 0, 10); got != 4.5 {
		t.Fatalf("MeanRate = %v", got)
	}
	if got := r.MeanRateBetween(0, 2*time.Second, 4*time.Second); got != 2.5 {
		t.Fatalf("MeanRateBetween = %v", got)
	}
	if r.MeanRate(0, 5, 5) != 0 {
		t.Fatal("empty interval should be 0")
	}
	// Interval extending past recorded data counts missing buckets as zero.
	if got := r.MeanRate(0, 8, 12); got != (8+9)/4.0 {
		t.Fatalf("padded MeanRate = %v", got)
	}
}

func TestNegativeAndUnknownAddIgnored(t *testing.T) {
	r := NewRecorder(time.Second, []string{"A"})
	r.Add(-time.Second, 0, 5)
	r.Add(0, 7, 5)
	r.Add(0, -1, 5)
	if r.NumBuckets() != 0 {
		t.Fatal("invalid Add calls recorded data")
	}
	// Silently losing samples hides harness bugs; every rejection counts.
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", r.Dropped())
	}
	r.Add(0, 0, 5)
	if r.Dropped() != 3 {
		t.Fatal("valid Add counted as dropped")
	}
	if r.NumBuckets() != 1 {
		t.Fatal("valid Add not recorded")
	}
}

func TestWriteTable(t *testing.T) {
	r := NewRecorder(time.Second, []string{"A", "B"})
	r.Add(0, 0, 3)
	r.Add(time.Second, 1, 7)
	var sb strings.Builder
	if err := r.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table = %q", out)
	}
	if !strings.HasPrefix(lines[0], "t(s)\tA\tB") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "3.0") || !strings.Contains(lines[2], "7.0") {
		t.Fatalf("rows = %q", lines[1:])
	}
}

func TestPhaseMeansAndFormat(t *testing.T) {
	r := NewRecorder(time.Second, []string{"A", "B"})
	for s := 0; s < 4; s++ {
		r.Add(time.Duration(s)*time.Second, 0, 10)
		r.Add(time.Duration(s)*time.Second, 1, 20)
	}
	phases := []Phase{
		{Name: "p1", From: 0, To: 2 * time.Second},
		{Name: "p2", From: 2 * time.Second, To: 4 * time.Second},
	}
	stats := r.PhaseMeans(phases)
	if len(stats) != 4 {
		t.Fatalf("stats = %v", stats)
	}
	if stats[0].Mean != 10 || stats[1].Mean != 20 {
		t.Fatalf("phase means = %v", stats)
	}
	out := FormatPhaseMeans(stats)
	if !strings.Contains(out, "p1") || !strings.Contains(out, "A=") {
		t.Fatalf("formatted = %q", out)
	}
}

func TestBadBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero bucket")
		}
	}()
	NewRecorder(0, nil)
}
