#!/usr/bin/env bash
# Markdown link gate: every relative link and heading anchor in the
# operator-facing documents must resolve. Offline and deterministic; CI
# runs this, `make linkcheck` runs it locally.
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/linkcheck README.md DESIGN.md EXPERIMENTS.md OPERATIONS.md ROADMAP.md docs/CONCEPTS.md
echo "linkcheck: all markdown links resolve"
