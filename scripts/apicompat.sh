#!/bin/sh
# apicompat.sh — fail when an exported Go declaration present in the parent
# commit is gone from the working tree, unless scripts/apicompat.allow lists
# it. Additions never fail (the surface may grow freely); removals and
# signature changes of exported API must be deliberate.
#
# Usage: scripts/apicompat.sh [base-rev]   (default HEAD^)
#
# Exits 0 with a notice when the base revision does not exist (first commit,
# shallow clone) — compatibility against nothing is vacuous.
set -eu

cd "$(dirname "$0")/.."
base="${1:-HEAD^}"

if ! git rev-parse --verify --quiet "$base" >/dev/null; then
    echo "apicompat: no base revision ($base); skipping"
    exit 0
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; git worktree prune >/dev/null 2>&1 || true' EXIT

git worktree add --detach --quiet "$tmp/base" "$base"
go run ./cmd/apisurface "$tmp/base" | sort >"$tmp/old"
go run ./cmd/apisurface . | sort >"$tmp/new"

# Declarations in the base surface missing from the current one.
comm -23 "$tmp/old" "$tmp/new" >"$tmp/removed" || true

if [ -f scripts/apicompat.allow ]; then
    grep -v '^[[:space:]]*\(#\|$\)' scripts/apicompat.allow >"$tmp/allow" || true
else
    : >"$tmp/allow"
fi

fail=0
while IFS= read -r line; do
    [ -n "$line" ] || continue
    if grep -Fxq "$line" "$tmp/allow"; then
        echo "apicompat: allowed removal: $line"
    else
        echo "apicompat: REMOVED: $line"
        fail=1
    fi
done <"$tmp/removed"

if [ "$fail" -ne 0 ]; then
    echo "apicompat: exported API removed or re-typed relative to $base."
    echo "apicompat: if intentional, add the exact line(s) to scripts/apicompat.allow."
    exit 1
fi
echo "apicompat: OK ($(wc -l <"$tmp/new" | tr -d ' ') exported declarations, none removed)"
