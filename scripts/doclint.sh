#!/usr/bin/env bash
# Documentation gate: go vet plus the repo's doclint tool, which fails on
# packages without a package comment and on exported identifiers without a
# doc comment. CI runs this; `make doclint` runs it locally.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go run ./cmd/doclint .
echo "doclint: all packages and exported identifiers documented"
