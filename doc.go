// Package repro implements distributed enforcement of resource sharing
// agreements among server clusters, reproducing Zhao & Karamcheti,
// "Enforcing Resource Sharing Agreements among Distributed Server
// Clusters" (IPDPS 2002).
//
// # Overview
//
// The library lets a set of redirector nodes — the admission points between
// distributed clients and a pool of servers owned by multiple principals —
// enforce service level agreements of the form [lb, ub]: principal j is
// guaranteed lb·100% of principal i's resources under overload and may use
// up to ub·100% when slack exists.
//
// The pieces, bottom to top:
//
//   - A System (internal/agreement) records principals, capacities and
//     direct agreements, and folds direct plus transitive agreement chains
//     into per-principal mandatory/optional access levels and per-pair
//     entitlement matrices via the ticket/currency flow computation of the
//     paper's §2–3.1.1.
//   - Window schedulers (internal/sched) solve, every 100 ms window, a
//     small linear program (internal/lp, a two-phase simplex) choosing how
//     many queued requests of each principal to forward where: either
//     maximizing the minimum served queue fraction (community) or the
//     provider's income (provider).
//   - An Engine (internal/core) stamps out one Redirector per admission
//     point; each converts the LP plan into per-window credits that admit
//     or turn away individual requests in O(1), scaled to the node's local
//     share of the global demand.
//   - A combining tree (internal/combining, internal/treenet) aggregates
//     per-principal queue estimates across redirectors in 2(n−1) messages
//     per epoch and broadcasts the global view back down.
//   - Two enforcement front-ends on real sockets: a Layer-7 HTTP
//     redirector (internal/l7) answering with 302 redirects, and a Layer-4
//     connection redirector (internal/l4) splicing TCP connections with
//     pending-queue reinjection.
//   - A deterministic virtual-time harness (internal/sim, internal/vclock)
//     and canned reproductions of every figure of the paper's evaluation
//     (internal/experiments).
//
// # Quick start
//
//	sys := repro.NewSystem()
//	a := sys.MustAddPrincipal("A", 320) // owns 320 req/s
//	b := sys.MustAddPrincipal("B", 320)
//	sys.MustSetAgreement(b, a, 0.5, 0.5) // B grants A half its server
//
//	eng, err := repro.NewEngine(repro.EngineConfig{
//		Mode:   repro.Community,
//		System: sys,
//	})
//	// err handling elided
//	red := eng.NewRedirector(0)
//	red.StartWindow(0)
//	decision := red.Admit(a) // admit or self-redirect one request
//	_ = decision
//	_ = err
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro
