package repro

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTools compiles the command-line binaries once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"backend", "redirector", "webbench", "experiment"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

// freePort grabs an ephemeral port and releases it for a child process.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// startProc launches a tool and arranges cleanup.
func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return cmd
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s", addr)
}

// TestCommandLineDeploymentL7 runs backend + redirector + webbench as
// separate processes against a scenario file — the full multi-process
// deployment path of the cmd tools.
func TestCommandLineDeploymentL7(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bins := buildTools(t)

	backendPort := freePort(t)
	redirectorPort := freePort(t)
	backendAddr := fmt.Sprintf("127.0.0.1:%d", backendPort)
	redirectorAddr := fmt.Sprintf("127.0.0.1:%d", redirectorPort)

	startProc(t, filepath.Join(bins, "backend"),
		"-layer", "l7", "-addr", backendAddr, "-capacity", "300", "-stats", "0")
	waitListening(t, backendAddr)

	scenario := fmt.Sprintf(`{
	  "mode": "provider", "provider": "S",
	  "window_ms": 20, "num_redirectors": 1,
	  "principals": [
	    {"name": "S", "capacity": 200},
	    {"name": "A", "capacity": 0},
	    {"name": "B", "capacity": 0}
	  ],
	  "agreements": [
	    {"owner": "S", "user": "A", "lb": 0.75, "ub": 1.0},
	    {"owner": "S", "user": "B", "lb": 0.25, "ub": 1.0}
	  ],
	  "l7": {
	    "addr": %q,
	    "orgs": {"alpha": "A", "beta": "B"},
	    "backends": {"S": ["http://%s"]}
	  }
	}`, redirectorAddr, backendAddr)
	scenarioPath := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(scenarioPath, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}

	startProc(t, filepath.Join(bins, "redirector"),
		"-config", scenarioPath, "-layer", "l7", "-id", "0")
	waitListening(t, redirectorAddr)

	out, err := exec.Command(filepath.Join(bins, "webbench"),
		"-layer", "l7",
		"-target", fmt.Sprintf("http://%s/svc/alpha/page?size=256", redirectorAddr),
		"-workers", "3", "-duration", "2s").CombinedOutput()
	if err != nil {
		t.Fatalf("webbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "done:") {
		t.Fatalf("webbench output missing summary:\n%s", out)
	}
	// The run must have completed a substantial number of requests.
	var completed, failed int
	var rate float64
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "done:") {
			if _, err := fmt.Sscanf(line, "done: %d completed, %d failed over 2s (%f req/s)",
				&completed, &failed, &rate); err != nil {
				t.Fatalf("cannot parse %q: %v", line, err)
			}
		}
	}
	if completed < 100 {
		t.Fatalf("only %d requests completed end-to-end", completed)
	}
}

// TestCommandLineDeploymentL4 runs the Layer-4 path: TCP backend + NAT-style
// redirector + webbench in separate processes.
func TestCommandLineDeploymentL4(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bins := buildTools(t)

	backendAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	serviceAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))

	startProc(t, filepath.Join(bins, "backend"),
		"-layer", "l4", "-addr", backendAddr, "-capacity", "300", "-stats", "0")
	waitListening(t, backendAddr)

	scenario := fmt.Sprintf(`{
	  "mode": "community",
	  "window_ms": 20, "num_redirectors": 1,
	  "principals": [
	    {"name": "A", "capacity": 300},
	    {"name": "B", "capacity": 0}
	  ],
	  "agreements": [
	    {"owner": "A", "user": "B", "lb": 0.5, "ub": 1.0}
	  ],
	  "l4": {
	    "services": {"B": %q},
	    "backends": {"A": [%q]}
	  }
	}`, serviceAddr, backendAddr)
	scenarioPath := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(scenarioPath, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}

	startProc(t, filepath.Join(bins, "redirector"),
		"-config", scenarioPath, "-layer", "l4", "-id", "0")
	waitListening(t, serviceAddr)

	out, err := exec.Command(filepath.Join(bins, "webbench"),
		"-layer", "l4", "-target", serviceAddr,
		"-workers", "3", "-duration", "2s").CombinedOutput()
	if err != nil {
		t.Fatalf("webbench l4: %v\n%s", err, out)
	}
	var completed, failed int
	var rate float64
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "done:") {
			if _, err := fmt.Sscanf(line, "done: %d completed, %d failed over 2s (%f req/s)",
				&completed, &failed, &rate); err != nil {
				t.Fatalf("cannot parse %q: %v", line, err)
			}
		}
	}
	if completed < 50 {
		t.Fatalf("only %d connections completed end-to-end:\n%s", completed, out)
	}
}

// TestCommandLineExperimentTool checks cmd/experiment's exit behavior and
// output format.
func TestCommandLineExperimentTool(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bins := buildTools(t)
	out, err := exec.Command(filepath.Join(bins, "experiment"), "-id", "fig3").CombinedOutput()
	if err != nil {
		t.Fatalf("experiment fig3: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "shape: OK") {
		t.Fatalf("missing shape confirmation:\n%s", out)
	}
	// Unknown ids exit non-zero.
	if _, err := exec.Command(filepath.Join(bins, "experiment"), "-id", "nope").CombinedOutput(); err == nil {
		t.Fatal("unknown experiment id exited zero")
	}
	// Series dump includes the TSV header.
	out, err = exec.Command(filepath.Join(bins, "experiment"), "-id", "fig1", "-series").CombinedOutput()
	if err != nil {
		t.Fatalf("experiment -series: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "endpoint") {
		t.Fatalf("fig1 output wrong:\n%s", out)
	}
}
