package repro

import (
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/experiments"
)

// Principal identifies a participant: an owner and/or user of resources.
type Principal = agreement.Principal

// System is the agreement graph: principals, capacities, and [lb, ub]
// contracts between them.
type System = agreement.System

// Agreement is one direct contract between two principals.
type Agreement = agreement.Agreement

// Access holds the folded entitlements: per-principal mandatory/optional
// rates (MC, OC) and per-pair matrices (MI, OI).
type Access = agreement.Access

// Flows holds the capacity-independent path sums; recompute Access cheaply
// when only capacities change.
type Flows = agreement.Flows

// Currency is the valuation view of one principal's currency, including the
// tickets it has issued (the paper's Figure 3 walkthrough).
type Currency = agreement.Currency

// Ticket is one transfer of rights between currencies.
type Ticket = agreement.Ticket

// NewSystem returns an empty agreement system.
func NewSystem() *System { return agreement.New() }

// Mode selects the scheduling objective.
type Mode = core.Mode

// Scheduling modes.
const (
	// Community maximizes the minimum served queue fraction across
	// principals.
	Community = core.Community
	// Provider maximizes the provider's income.
	Provider = core.Provider
)

// EngineConfig parameterizes an enforcement engine.
type EngineConfig = core.Config

// MultiResourceConfig declares vector capacities and per-request costs for
// multi-dimensional enforcement (§3.1.1).
type MultiResourceConfig = core.MultiResourceConfig

// Engine holds the folded agreement state shared by all redirectors of a
// deployment.
type Engine = core.Engine

// Redirector is one admission point's enforcement state: window credits,
// demand estimation and global-view tracking.
type Redirector = core.Redirector

// Decision is the outcome of admitting one request.
type Decision = core.Decision

// NewEngine folds the agreement graph and builds the window scheduler.
func NewEngine(cfg EngineConfig) (*Engine, error) { return core.NewEngine(cfg) }

// ExperimentResult is a paper-reproduction run: measured series, phase
// means and the paper's expected values.
type ExperimentResult = experiments.Result

// ExperimentIDs lists the available paper experiments (fig1, fig3, fig6–10
// and the two ablations).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment executes one paper experiment by id.
func RunExperiment(id string) (*ExperimentResult, error) { return experiments.Run(id) }
